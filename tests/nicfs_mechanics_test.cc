// NICFS mechanics that the end-to-end suites don't pin down directly:
// replication flow control via NIC memory watermarks (§4), compression-stage
// bypass under backlog (§3.3.2), NICFS fail-stop error semantics (§3.6), and
// dynamic stage scaling (§3.1).

#include <gtest/gtest.h>

#include "tests/co_test_util.h"

#include "src/core/cluster.h"
#include "src/core/libfs.h"
#include "src/core/nicfs.h"

namespace linefs::core {
namespace {

DfsConfig Config() {
  DfsConfig config;
  config.mode = DfsMode::kLineFS;
  config.num_nodes = 3;
  config.pm_size = 512ULL << 20;
  config.log_size = 32ULL << 20;
  config.inode_count = 65536;
  config.chunk_size = 1ULL << 20;
  config.materialize_data = true;
  return config;
}

class NicFsMechanicsTest : public ::testing::Test {
 protected:
  void Start(const DfsConfig& config) {
    cluster_ = std::make_unique<Cluster>(&engine_, config);
    Status start_st = cluster_->Start();
    EXPECT_TRUE(start_st.ok()) << start_st.ToString();
  }
  void TearDown() override {
    if (cluster_) {
      cluster_->Shutdown();
      engine_.Run();
    }
  }
  template <typename Fn>
  void Run(Fn&& body) {
    bool done = false;
    engine_.Spawn([](Fn body, bool* done) -> sim::Task<> {
      co_await body();
      *done = true;
    }(std::forward<Fn>(body), &done));
    sim::Time deadline = engine_.Now() + 600 * sim::kSecond;
    while (!done && engine_.Now() < deadline && engine_.RunOne()) {
    }
    ASSERT_TRUE(done);
  }

  sim::Engine engine_;
  std::unique_ptr<Cluster> cluster_;
};

TEST_F(NicFsMechanicsTest, FlowControlPausesFetchAtHighWatermark) {
  DfsConfig config = Config();
  // Tiny NIC memory: 4MB with a 70% watermark => at most ~2 chunks in flight.
  config.node_params.nic.mem_capacity = 4ULL << 20;
  config.mem_high_watermark = 0.70;
  config.mem_low_watermark = 0.30;
  Start(config);
  LibFs* fs = cluster_->CreateClient(0);

  uint64_t peak_mem = 0;
  engine_.Spawn([](sim::Engine* engine, Cluster* cluster, uint64_t* peak) -> sim::Task<> {
    while (engine->Now() < 30 * sim::kSecond) {
      *peak = std::max(*peak, cluster->hw_node(0).nic().mem_used());
      co_await engine->SleepFor(100 * sim::kMicrosecond);
    }
  }(&engine_, cluster_.get(), &peak_mem));

  Run([&]() -> sim::Task<> {
    Result<int> fd = co_await fs->Open("/fc.dat", fslib::kOpenCreate | fslib::kOpenWrite);
    CO_ASSERT_OK(fd);
    Result<uint64_t> w = co_await fs->PwriteGen(*fd, 16ULL << 20, 0, 1);
    CO_ASSERT_OK(w);
    CO_ASSERT_OK(co_await fs->Fsync(*fd));
  });
  engine_.RunUntil(engine_.Now() + 5 * sim::kSecond);

  // All 16MB made it through a 4MB NIC memory without exceeding capacity
  // (flow control paced the fetch stage), and the data is on the replicas.
  EXPECT_LE(peak_mem, 4ULL << 20);
  EXPECT_GT(peak_mem, 0u);
  fslib::PublicFs& replica = cluster_->dfs_node(2).fs();
  Result<fslib::InodeNum> inum = replica.LookupChild(fslib::kRootInode, "fc.dat");
  ASSERT_TRUE(inum.ok());
  Result<fslib::FileAttr> attr = replica.GetAttr(*inum);
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->size, 16ULL << 20);
}

TEST_F(NicFsMechanicsTest, CompressionBypassesWhenBacklogged) {
  DfsConfig config = Config();
  config.compression = true;
  config.compression_threads = 1;   // Starve the stage.
  config.max_stage_workers = 1;     // No scaling relief.
  config.stage_queue_threshold = 1;
  Start(config);
  LibFs* fs = cluster_->CreateClient(0);
  Run([&]() -> sim::Task<> {
    Result<int> fd = co_await fs->Open("/cb.dat", fslib::kOpenCreate | fslib::kOpenWrite);
    CO_ASSERT_OK(fd);
    Result<uint64_t> w = co_await fs->PwriteGen(*fd, 24ULL << 20, 0, 1);
    CO_ASSERT_OK(w);
    CO_ASSERT_OK(co_await fs->Fsync(*fd));
  });
  engine_.RunUntil(engine_.Now() + 5 * sim::kSecond);
  NicFs::StatsSnapshot stats = cluster_->nicfs(0)->stats();
  // Some chunks skipped the overloaded compression stage (§3.3.2)...
  EXPECT_GT(stats.stages.at("compress").bypassed, 0u);
  // ...but everything still replicated correctly.
  fslib::PublicFs& replica = cluster_->dfs_node(1).fs();
  Result<fslib::InodeNum> inum = replica.LookupChild(fslib::kRootInode, "cb.dat");
  ASSERT_TRUE(inum.ok());
}

TEST_F(NicFsMechanicsTest, NicFsFailureReturnsErrorsToClients) {
  Start(Config());
  LibFs* fs = cluster_->CreateClient(0);
  Run([&]() -> sim::Task<> {
    Result<int> fd = co_await fs->Open("/pre.dat", fslib::kOpenCreate | fslib::kOpenWrite);
    CO_ASSERT_OK(fd);
    CO_ASSERT_OK((co_await fs->PwriteGen(*fd, 1 << 20, 0, 1)));
    CO_ASSERT_OK(co_await fs->Fsync(*fd));
  });
  // The primary's NICFS dies (SmartNIC process failure). Per §3.6, local
  // LibFSes get error codes on further file system access.
  cluster_->SetServiceAlive(0, false);
  Run([&]() -> sim::Task<> {
    // A fresh-file create needs a lease from the dead NICFS.
    Result<int> fd = co_await fs->Open("/post.dat", fslib::kOpenCreate | fslib::kOpenWrite);
    EXPECT_FALSE(fd.ok());
    // fsync of the old file cannot reach NICFS either.
    Result<int> old_fd = co_await fs->Open("/pre.dat", fslib::kOpenWrite);
    if (old_fd.ok()) {
      Status st = co_await fs->Fsync(*old_fd);
      EXPECT_FALSE(st.ok());
    }
  });
  // The already-replicated data is intact on the replicas (give their
  // publication pipelines a moment to finish digesting).
  engine_.RunUntil(engine_.Now() + 3 * sim::kSecond);
  fslib::PublicFs& replica = cluster_->dfs_node(1).fs();
  EXPECT_TRUE(replica.LookupChild(fslib::kRootInode, "pre.dat").ok());
}

TEST_F(NicFsMechanicsTest, StageScalingAddsValidateWorkers) {
  DfsConfig config = Config();
  config.stage_queue_threshold = 1;  // Scale aggressively.
  Start(config);
  LibFs* fs = cluster_->CreateClient(0);
  Run([&]() -> sim::Task<> {
    Result<int> fd = co_await fs->Open("/sc.dat", fslib::kOpenCreate | fslib::kOpenWrite);
    CO_ASSERT_OK(fd);
    Result<uint64_t> w = co_await fs->PwriteGen(*fd, 48ULL << 20, 0, 1);
    CO_ASSERT_OK(w);
    CO_ASSERT_OK(co_await fs->Fsync(*fd));
  });
  // 48 chunks through the pipeline with an aggressive threshold: the scaling
  // monitor must have grown the validation stage.
  EXPECT_GT(cluster_->nicfs(0)->stats().chunks_fetched, 40u);
}

}  // namespace
}  // namespace linefs::core
