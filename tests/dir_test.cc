// DirStore unit tests: dirent slot management, cache rebuild, growth across
// blocks, and ancestor walks.

#include <gtest/gtest.h>

#include "src/fslib/dir.h"
#include "src/fslib/layout.h"
#include "src/fslib/publicfs.h"
#include "src/pmem/region.h"

namespace linefs::fslib {
namespace {

class DirTest : public ::testing::Test {
 protected:
  DirTest()
      : region_(64 << 20),
        layout_(Layout::Compute(64 << 20, LayoutConfig{1024, 1, 4 << 20})),
        fs_(&region_, layout_) {
    fs_.Mkfs();
  }

  InodeNum MakeDir(InodeNum parent, const std::string& name, InodeNum inum) {
    Inode inode;
    inode.inum = inum;
    inode.type = FileType::kDirectory;
    inode.nlink = 1;
    inode.parent = parent;
    fs_.inodes().Put(inode);
    EXPECT_TRUE(fs_.dirs().Add(parent, name, inum).ok());
    return inum;
  }

  pmem::Region region_;
  Layout layout_;
  PublicFs fs_;
};

TEST_F(DirTest, AddLookupRemove) {
  ASSERT_TRUE(fs_.dirs().Add(kRootInode, "a", 100).ok());
  Result<InodeNum> found = fs_.dirs().Lookup(kRootInode, "a");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, 100u);
  ASSERT_TRUE(fs_.dirs().Remove(kRootInode, "a").ok());
  EXPECT_FALSE(fs_.dirs().Lookup(kRootInode, "a").ok());
}

TEST_F(DirTest, DuplicateAddRejected) {
  ASSERT_TRUE(fs_.dirs().Add(kRootInode, "dup", 100).ok());
  Status st = fs_.dirs().Add(kRootInode, "dup", 101);
  EXPECT_EQ(st.code(), ErrorCode::kExists);
}

TEST_F(DirTest, GrowsAcrossManyBlocks) {
  // 64 dirents per block; add several blocks' worth.
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(fs_.dirs().Add(kRootInode, "f" + std::to_string(i), 100 + i).ok())
        << "at " << i;
  }
  Result<uint64_t> count = fs_.dirs().Count(kRootInode);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 300u);
  // Spot-check entries in different blocks.
  for (int i : {0, 63, 64, 127, 128, 299}) {
    Result<InodeNum> found = fs_.dirs().Lookup(kRootInode, "f" + std::to_string(i));
    ASSERT_TRUE(found.ok()) << i;
    EXPECT_EQ(*found, 100u + i);
  }
}

TEST_F(DirTest, FreeSlotsAreReused) {
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(fs_.dirs().Add(kRootInode, "g" + std::to_string(i), 200 + i).ok());
  }
  uint64_t free_before = fs_.allocator().free_blocks();
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(fs_.dirs().Remove(kRootInode, "g" + std::to_string(i)).ok());
  }
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(fs_.dirs().Add(kRootInode, "h" + std::to_string(i), 300 + i).ok());
  }
  // Reused freed slots: no extra dirent blocks were allocated.
  EXPECT_EQ(fs_.allocator().free_blocks(), free_before);
}

TEST_F(DirTest, CacheInvalidationRebuildsFromPm) {
  ASSERT_TRUE(fs_.dirs().Add(kRootInode, "persist", 400).ok());
  fs_.dirs().InvalidateAll();
  Result<InodeNum> found = fs_.dirs().Lookup(kRootInode, "persist");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, 400u);
}

TEST_F(DirTest, IsSelfOrAncestorWalksParents) {
  InodeNum a = MakeDir(kRootInode, "a", 10);
  InodeNum b = MakeDir(a, "b", 11);
  InodeNum c = MakeDir(b, "c", 12);
  EXPECT_TRUE(fs_.dirs().IsSelfOrAncestor(a, c));
  EXPECT_TRUE(fs_.dirs().IsSelfOrAncestor(c, c));
  EXPECT_TRUE(fs_.dirs().IsSelfOrAncestor(kRootInode, c));
  EXPECT_FALSE(fs_.dirs().IsSelfOrAncestor(c, a));
  EXPECT_FALSE(fs_.dirs().IsSelfOrAncestor(b, a));
}

TEST_F(DirTest, LookupInNonDirectoryFails) {
  Inode file;
  file.inum = 500;
  file.type = FileType::kRegular;
  file.nlink = 1;
  fs_.inodes().Put(file);
  Result<InodeNum> found = fs_.dirs().Lookup(500, "x");
  EXPECT_FALSE(found.ok());
  EXPECT_EQ(found.code(), ErrorCode::kNotDir);
}

}  // namespace
}  // namespace linefs::fslib
