# Empty compiler generated dependencies file for linefs_hw.
# This may be replaced when dependencies are built.
