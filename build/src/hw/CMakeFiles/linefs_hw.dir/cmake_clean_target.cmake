file(REMOVE_RECURSE
  "liblinefs_hw.a"
)
