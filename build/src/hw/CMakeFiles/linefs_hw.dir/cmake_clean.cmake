file(REMOVE_RECURSE
  "CMakeFiles/linefs_hw.dir/node.cc.o"
  "CMakeFiles/linefs_hw.dir/node.cc.o.d"
  "liblinefs_hw.a"
  "liblinefs_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linefs_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
