file(REMOVE_RECURSE
  "CMakeFiles/linefs_baseline.dir/cephlike.cc.o"
  "CMakeFiles/linefs_baseline.dir/cephlike.cc.o.d"
  "liblinefs_baseline.a"
  "liblinefs_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linefs_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
