file(REMOVE_RECURSE
  "liblinefs_baseline.a"
)
