# Empty dependencies file for linefs_baseline.
# This may be replaced when dependencies are built.
