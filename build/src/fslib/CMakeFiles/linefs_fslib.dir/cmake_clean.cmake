file(REMOVE_RECURSE
  "CMakeFiles/linefs_fslib.dir/dir.cc.o"
  "CMakeFiles/linefs_fslib.dir/dir.cc.o.d"
  "CMakeFiles/linefs_fslib.dir/extent.cc.o"
  "CMakeFiles/linefs_fslib.dir/extent.cc.o.d"
  "CMakeFiles/linefs_fslib.dir/index.cc.o"
  "CMakeFiles/linefs_fslib.dir/index.cc.o.d"
  "CMakeFiles/linefs_fslib.dir/oplog.cc.o"
  "CMakeFiles/linefs_fslib.dir/oplog.cc.o.d"
  "CMakeFiles/linefs_fslib.dir/publicfs.cc.o"
  "CMakeFiles/linefs_fslib.dir/publicfs.cc.o.d"
  "CMakeFiles/linefs_fslib.dir/types.cc.o"
  "CMakeFiles/linefs_fslib.dir/types.cc.o.d"
  "CMakeFiles/linefs_fslib.dir/validate.cc.o"
  "CMakeFiles/linefs_fslib.dir/validate.cc.o.d"
  "liblinefs_fslib.a"
  "liblinefs_fslib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linefs_fslib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
