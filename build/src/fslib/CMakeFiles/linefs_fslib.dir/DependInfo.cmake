
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fslib/dir.cc" "src/fslib/CMakeFiles/linefs_fslib.dir/dir.cc.o" "gcc" "src/fslib/CMakeFiles/linefs_fslib.dir/dir.cc.o.d"
  "/root/repo/src/fslib/extent.cc" "src/fslib/CMakeFiles/linefs_fslib.dir/extent.cc.o" "gcc" "src/fslib/CMakeFiles/linefs_fslib.dir/extent.cc.o.d"
  "/root/repo/src/fslib/index.cc" "src/fslib/CMakeFiles/linefs_fslib.dir/index.cc.o" "gcc" "src/fslib/CMakeFiles/linefs_fslib.dir/index.cc.o.d"
  "/root/repo/src/fslib/oplog.cc" "src/fslib/CMakeFiles/linefs_fslib.dir/oplog.cc.o" "gcc" "src/fslib/CMakeFiles/linefs_fslib.dir/oplog.cc.o.d"
  "/root/repo/src/fslib/publicfs.cc" "src/fslib/CMakeFiles/linefs_fslib.dir/publicfs.cc.o" "gcc" "src/fslib/CMakeFiles/linefs_fslib.dir/publicfs.cc.o.d"
  "/root/repo/src/fslib/types.cc" "src/fslib/CMakeFiles/linefs_fslib.dir/types.cc.o" "gcc" "src/fslib/CMakeFiles/linefs_fslib.dir/types.cc.o.d"
  "/root/repo/src/fslib/validate.cc" "src/fslib/CMakeFiles/linefs_fslib.dir/validate.cc.o" "gcc" "src/fslib/CMakeFiles/linefs_fslib.dir/validate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pmem/CMakeFiles/linefs_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/linefs_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
