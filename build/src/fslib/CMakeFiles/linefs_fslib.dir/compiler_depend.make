# Empty compiler generated dependencies file for linefs_fslib.
# This may be replaced when dependencies are built.
