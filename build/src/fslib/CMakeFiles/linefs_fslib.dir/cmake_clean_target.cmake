file(REMOVE_RECURSE
  "liblinefs_fslib.a"
)
