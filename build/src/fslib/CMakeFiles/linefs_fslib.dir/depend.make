# Empty dependencies file for linefs_fslib.
# This may be replaced when dependencies are built.
