file(REMOVE_RECURSE
  "CMakeFiles/linefs_workloads.dir/filebench.cc.o"
  "CMakeFiles/linefs_workloads.dir/filebench.cc.o.d"
  "CMakeFiles/linefs_workloads.dir/microbench.cc.o"
  "CMakeFiles/linefs_workloads.dir/microbench.cc.o.d"
  "CMakeFiles/linefs_workloads.dir/minikv.cc.o"
  "CMakeFiles/linefs_workloads.dir/minikv.cc.o.d"
  "CMakeFiles/linefs_workloads.dir/sortbench.cc.o"
  "CMakeFiles/linefs_workloads.dir/sortbench.cc.o.d"
  "CMakeFiles/linefs_workloads.dir/streamcluster.cc.o"
  "CMakeFiles/linefs_workloads.dir/streamcluster.cc.o.d"
  "liblinefs_workloads.a"
  "liblinefs_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linefs_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
