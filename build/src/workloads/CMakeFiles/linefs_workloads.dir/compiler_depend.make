# Empty compiler generated dependencies file for linefs_workloads.
# This may be replaced when dependencies are built.
