file(REMOVE_RECURSE
  "liblinefs_workloads.a"
)
