# Empty compiler generated dependencies file for linefs_compress.
# This may be replaced when dependencies are built.
