file(REMOVE_RECURSE
  "liblinefs_compress.a"
)
