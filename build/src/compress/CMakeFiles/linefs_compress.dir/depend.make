# Empty dependencies file for linefs_compress.
# This may be replaced when dependencies are built.
