file(REMOVE_RECURSE
  "CMakeFiles/linefs_compress.dir/lzw.cc.o"
  "CMakeFiles/linefs_compress.dir/lzw.cc.o.d"
  "liblinefs_compress.a"
  "liblinefs_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linefs_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
