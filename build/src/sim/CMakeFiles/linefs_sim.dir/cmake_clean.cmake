file(REMOVE_RECURSE
  "CMakeFiles/linefs_sim.dir/cpu.cc.o"
  "CMakeFiles/linefs_sim.dir/cpu.cc.o.d"
  "CMakeFiles/linefs_sim.dir/engine.cc.o"
  "CMakeFiles/linefs_sim.dir/engine.cc.o.d"
  "CMakeFiles/linefs_sim.dir/result.cc.o"
  "CMakeFiles/linefs_sim.dir/result.cc.o.d"
  "CMakeFiles/linefs_sim.dir/stats.cc.o"
  "CMakeFiles/linefs_sim.dir/stats.cc.o.d"
  "CMakeFiles/linefs_sim.dir/trace.cc.o"
  "CMakeFiles/linefs_sim.dir/trace.cc.o.d"
  "liblinefs_sim.a"
  "liblinefs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linefs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
