file(REMOVE_RECURSE
  "liblinefs_sim.a"
)
