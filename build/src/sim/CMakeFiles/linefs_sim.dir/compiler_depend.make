# Empty compiler generated dependencies file for linefs_sim.
# This may be replaced when dependencies are built.
