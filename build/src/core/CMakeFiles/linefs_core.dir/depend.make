# Empty dependencies file for linefs_core.
# This may be replaced when dependencies are built.
