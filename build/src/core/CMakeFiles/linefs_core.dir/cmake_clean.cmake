file(REMOVE_RECURSE
  "CMakeFiles/linefs_core.dir/cluster.cc.o"
  "CMakeFiles/linefs_core.dir/cluster.cc.o.d"
  "CMakeFiles/linefs_core.dir/clustermgr.cc.o"
  "CMakeFiles/linefs_core.dir/clustermgr.cc.o.d"
  "CMakeFiles/linefs_core.dir/kworker.cc.o"
  "CMakeFiles/linefs_core.dir/kworker.cc.o.d"
  "CMakeFiles/linefs_core.dir/lease.cc.o"
  "CMakeFiles/linefs_core.dir/lease.cc.o.d"
  "CMakeFiles/linefs_core.dir/libfs.cc.o"
  "CMakeFiles/linefs_core.dir/libfs.cc.o.d"
  "CMakeFiles/linefs_core.dir/nicfs.cc.o"
  "CMakeFiles/linefs_core.dir/nicfs.cc.o.d"
  "CMakeFiles/linefs_core.dir/sharedfs.cc.o"
  "CMakeFiles/linefs_core.dir/sharedfs.cc.o.d"
  "liblinefs_core.a"
  "liblinefs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linefs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
