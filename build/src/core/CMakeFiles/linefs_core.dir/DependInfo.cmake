
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cluster.cc" "src/core/CMakeFiles/linefs_core.dir/cluster.cc.o" "gcc" "src/core/CMakeFiles/linefs_core.dir/cluster.cc.o.d"
  "/root/repo/src/core/clustermgr.cc" "src/core/CMakeFiles/linefs_core.dir/clustermgr.cc.o" "gcc" "src/core/CMakeFiles/linefs_core.dir/clustermgr.cc.o.d"
  "/root/repo/src/core/kworker.cc" "src/core/CMakeFiles/linefs_core.dir/kworker.cc.o" "gcc" "src/core/CMakeFiles/linefs_core.dir/kworker.cc.o.d"
  "/root/repo/src/core/lease.cc" "src/core/CMakeFiles/linefs_core.dir/lease.cc.o" "gcc" "src/core/CMakeFiles/linefs_core.dir/lease.cc.o.d"
  "/root/repo/src/core/libfs.cc" "src/core/CMakeFiles/linefs_core.dir/libfs.cc.o" "gcc" "src/core/CMakeFiles/linefs_core.dir/libfs.cc.o.d"
  "/root/repo/src/core/nicfs.cc" "src/core/CMakeFiles/linefs_core.dir/nicfs.cc.o" "gcc" "src/core/CMakeFiles/linefs_core.dir/nicfs.cc.o.d"
  "/root/repo/src/core/sharedfs.cc" "src/core/CMakeFiles/linefs_core.dir/sharedfs.cc.o" "gcc" "src/core/CMakeFiles/linefs_core.dir/sharedfs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fslib/CMakeFiles/linefs_fslib.dir/DependInfo.cmake"
  "/root/repo/build/src/rdma/CMakeFiles/linefs_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/linefs_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/linefs_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/pmem/CMakeFiles/linefs_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/linefs_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
