file(REMOVE_RECURSE
  "liblinefs_core.a"
)
