file(REMOVE_RECURSE
  "CMakeFiles/linefs_pmem.dir/alloc.cc.o"
  "CMakeFiles/linefs_pmem.dir/alloc.cc.o.d"
  "CMakeFiles/linefs_pmem.dir/region.cc.o"
  "CMakeFiles/linefs_pmem.dir/region.cc.o.d"
  "liblinefs_pmem.a"
  "liblinefs_pmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linefs_pmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
