file(REMOVE_RECURSE
  "liblinefs_pmem.a"
)
