# Empty compiler generated dependencies file for linefs_pmem.
# This may be replaced when dependencies are built.
