
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pmem/alloc.cc" "src/pmem/CMakeFiles/linefs_pmem.dir/alloc.cc.o" "gcc" "src/pmem/CMakeFiles/linefs_pmem.dir/alloc.cc.o.d"
  "/root/repo/src/pmem/region.cc" "src/pmem/CMakeFiles/linefs_pmem.dir/region.cc.o" "gcc" "src/pmem/CMakeFiles/linefs_pmem.dir/region.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/linefs_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
