# Empty compiler generated dependencies file for linefs_rdma.
# This may be replaced when dependencies are built.
