file(REMOVE_RECURSE
  "CMakeFiles/linefs_rdma.dir/rdma.cc.o"
  "CMakeFiles/linefs_rdma.dir/rdma.cc.o.d"
  "CMakeFiles/linefs_rdma.dir/rpc.cc.o"
  "CMakeFiles/linefs_rdma.dir/rpc.cc.o.d"
  "liblinefs_rdma.a"
  "liblinefs_rdma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linefs_rdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
