file(REMOVE_RECURSE
  "liblinefs_rdma.a"
)
