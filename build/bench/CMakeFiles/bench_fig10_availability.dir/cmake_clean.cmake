file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_availability.dir/bench_fig10_availability.cc.o"
  "CMakeFiles/bench_fig10_availability.dir/bench_fig10_availability.cc.o.d"
  "bench_fig10_availability"
  "bench_fig10_availability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
