file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8b_filebench.dir/bench_fig8b_filebench.cc.o"
  "CMakeFiles/bench_fig8b_filebench.dir/bench_fig8b_filebench.cc.o.d"
  "bench_fig8b_filebench"
  "bench_fig8b_filebench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8b_filebench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
