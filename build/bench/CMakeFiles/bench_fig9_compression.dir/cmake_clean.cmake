file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_compression.dir/bench_fig9_compression.cc.o"
  "CMakeFiles/bench_fig9_compression.dir/bench_fig9_compression.cc.o.d"
  "bench_fig9_compression"
  "bench_fig9_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
