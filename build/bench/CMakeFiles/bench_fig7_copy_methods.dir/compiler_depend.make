# Empty compiler generated dependencies file for bench_fig7_copy_methods.
# This may be replaced when dependencies are built.
