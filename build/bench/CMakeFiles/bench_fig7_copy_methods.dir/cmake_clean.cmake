file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_copy_methods.dir/bench_fig7_copy_methods.cc.o"
  "CMakeFiles/bench_fig7_copy_methods.dir/bench_fig7_copy_methods.cc.o.d"
  "bench_fig7_copy_methods"
  "bench_fig7_copy_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_copy_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
