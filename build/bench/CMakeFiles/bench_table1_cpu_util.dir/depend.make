# Empty dependencies file for bench_table1_cpu_util.
# This may be replaced when dependencies are built.
