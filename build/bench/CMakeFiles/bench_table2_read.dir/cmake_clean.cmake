file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_read.dir/bench_table2_read.cc.o"
  "CMakeFiles/bench_table2_read.dir/bench_table2_read.cc.o.d"
  "bench_table2_read"
  "bench_table2_read.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_read.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
