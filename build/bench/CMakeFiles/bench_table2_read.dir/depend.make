# Empty dependencies file for bench_table2_read.
# This may be replaced when dependencies are built.
