# Empty dependencies file for bench_fig8a_leveldb.
# This may be replaced when dependencies are built.
