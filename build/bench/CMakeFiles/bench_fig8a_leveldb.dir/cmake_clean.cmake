file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8a_leveldb.dir/bench_fig8a_leveldb.cc.o"
  "CMakeFiles/bench_fig8a_leveldb.dir/bench_fig8a_leveldb.cc.o.d"
  "bench_fig8a_leveldb"
  "bench_fig8a_leveldb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8a_leveldb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
