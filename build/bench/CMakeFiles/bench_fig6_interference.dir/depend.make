# Empty dependencies file for bench_fig6_interference.
# This may be replaced when dependencies are built.
