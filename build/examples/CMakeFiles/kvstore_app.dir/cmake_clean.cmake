file(REMOVE_RECURSE
  "CMakeFiles/kvstore_app.dir/kvstore_app.cpp.o"
  "CMakeFiles/kvstore_app.dir/kvstore_app.cpp.o.d"
  "kvstore_app"
  "kvstore_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvstore_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
