# Empty compiler generated dependencies file for kvstore_app.
# This may be replaced when dependencies are built.
