file(REMOVE_RECURSE
  "CMakeFiles/compress_replication.dir/compress_replication.cpp.o"
  "CMakeFiles/compress_replication.dir/compress_replication.cpp.o.d"
  "compress_replication"
  "compress_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compress_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
