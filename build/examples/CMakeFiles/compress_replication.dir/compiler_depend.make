# Empty compiler generated dependencies file for compress_replication.
# This may be replaced when dependencies are built.
