
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cluster_test.cc" "tests/CMakeFiles/linefs_tests.dir/cluster_test.cc.o" "gcc" "tests/CMakeFiles/linefs_tests.dir/cluster_test.cc.o.d"
  "/root/repo/tests/compress_test.cc" "tests/CMakeFiles/linefs_tests.dir/compress_test.cc.o" "gcc" "tests/CMakeFiles/linefs_tests.dir/compress_test.cc.o.d"
  "/root/repo/tests/crash_consistency_test.cc" "tests/CMakeFiles/linefs_tests.dir/crash_consistency_test.cc.o" "gcc" "tests/CMakeFiles/linefs_tests.dir/crash_consistency_test.cc.o.d"
  "/root/repo/tests/dir_test.cc" "tests/CMakeFiles/linefs_tests.dir/dir_test.cc.o" "gcc" "tests/CMakeFiles/linefs_tests.dir/dir_test.cc.o.d"
  "/root/repo/tests/kworker_test.cc" "tests/CMakeFiles/linefs_tests.dir/kworker_test.cc.o" "gcc" "tests/CMakeFiles/linefs_tests.dir/kworker_test.cc.o.d"
  "/root/repo/tests/nicfs_mechanics_test.cc" "tests/CMakeFiles/linefs_tests.dir/nicfs_mechanics_test.cc.o" "gcc" "tests/CMakeFiles/linefs_tests.dir/nicfs_mechanics_test.cc.o.d"
  "/root/repo/tests/oplog_test.cc" "tests/CMakeFiles/linefs_tests.dir/oplog_test.cc.o" "gcc" "tests/CMakeFiles/linefs_tests.dir/oplog_test.cc.o.d"
  "/root/repo/tests/pmem_test.cc" "tests/CMakeFiles/linefs_tests.dir/pmem_test.cc.o" "gcc" "tests/CMakeFiles/linefs_tests.dir/pmem_test.cc.o.d"
  "/root/repo/tests/posix_semantics_test.cc" "tests/CMakeFiles/linefs_tests.dir/posix_semantics_test.cc.o" "gcc" "tests/CMakeFiles/linefs_tests.dir/posix_semantics_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/linefs_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/linefs_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/publicfs_test.cc" "tests/CMakeFiles/linefs_tests.dir/publicfs_test.cc.o" "gcc" "tests/CMakeFiles/linefs_tests.dir/publicfs_test.cc.o.d"
  "/root/repo/tests/rdma_test.cc" "tests/CMakeFiles/linefs_tests.dir/rdma_test.cc.o" "gcc" "tests/CMakeFiles/linefs_tests.dir/rdma_test.cc.o.d"
  "/root/repo/tests/sim_engine_test.cc" "tests/CMakeFiles/linefs_tests.dir/sim_engine_test.cc.o" "gcc" "tests/CMakeFiles/linefs_tests.dir/sim_engine_test.cc.o.d"
  "/root/repo/tests/workloads_test.cc" "tests/CMakeFiles/linefs_tests.dir/workloads_test.cc.o" "gcc" "tests/CMakeFiles/linefs_tests.dir/workloads_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/linefs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pmem/CMakeFiles/linefs_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/linefs_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/rdma/CMakeFiles/linefs_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/fslib/CMakeFiles/linefs_fslib.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/linefs_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/linefs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/linefs_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/linefs_baseline.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
