# Empty dependencies file for linefs_tests.
# This may be replaced when dependencies are built.
