file(REMOVE_RECURSE
  "CMakeFiles/linefs_tests.dir/cluster_test.cc.o"
  "CMakeFiles/linefs_tests.dir/cluster_test.cc.o.d"
  "CMakeFiles/linefs_tests.dir/compress_test.cc.o"
  "CMakeFiles/linefs_tests.dir/compress_test.cc.o.d"
  "CMakeFiles/linefs_tests.dir/crash_consistency_test.cc.o"
  "CMakeFiles/linefs_tests.dir/crash_consistency_test.cc.o.d"
  "CMakeFiles/linefs_tests.dir/dir_test.cc.o"
  "CMakeFiles/linefs_tests.dir/dir_test.cc.o.d"
  "CMakeFiles/linefs_tests.dir/kworker_test.cc.o"
  "CMakeFiles/linefs_tests.dir/kworker_test.cc.o.d"
  "CMakeFiles/linefs_tests.dir/nicfs_mechanics_test.cc.o"
  "CMakeFiles/linefs_tests.dir/nicfs_mechanics_test.cc.o.d"
  "CMakeFiles/linefs_tests.dir/oplog_test.cc.o"
  "CMakeFiles/linefs_tests.dir/oplog_test.cc.o.d"
  "CMakeFiles/linefs_tests.dir/pmem_test.cc.o"
  "CMakeFiles/linefs_tests.dir/pmem_test.cc.o.d"
  "CMakeFiles/linefs_tests.dir/posix_semantics_test.cc.o"
  "CMakeFiles/linefs_tests.dir/posix_semantics_test.cc.o.d"
  "CMakeFiles/linefs_tests.dir/property_test.cc.o"
  "CMakeFiles/linefs_tests.dir/property_test.cc.o.d"
  "CMakeFiles/linefs_tests.dir/publicfs_test.cc.o"
  "CMakeFiles/linefs_tests.dir/publicfs_test.cc.o.d"
  "CMakeFiles/linefs_tests.dir/rdma_test.cc.o"
  "CMakeFiles/linefs_tests.dir/rdma_test.cc.o.d"
  "CMakeFiles/linefs_tests.dir/sim_engine_test.cc.o"
  "CMakeFiles/linefs_tests.dir/sim_engine_test.cc.o.d"
  "CMakeFiles/linefs_tests.dir/workloads_test.cc.o"
  "CMakeFiles/linefs_tests.dir/workloads_test.cc.o.d"
  "linefs_tests"
  "linefs_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linefs_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
