// Table 3: write+fsync latency (avg / 99th / 99.9th, microseconds) with idle
// and busy replicas, for Assise, Assise+Hyperloop, and LineFS.
//
// Paper shapes: idle — LineFS ~2x Assise average (extra PCIe hops + wimpy
// cores); busy — LineFS unchanged (fully offloaded), Assise's tail blows up
// by ~40x (host scheduling delays), Hyperloop keeps avg/p99 but its p99.9
// collapses when verb pre-posting is delayed.

#include <benchmark/benchmark.h>

#include <map>

#include "bench/harness.h"
#include "src/workloads/microbench.h"

namespace linefs::bench {
namespace {

constexpr uint64_t kOps = 4000;
constexpr uint64_t kIoSize = 16 << 10;

const core::DfsMode kModes[] = {core::DfsMode::kAssise, core::DfsMode::kAssiseHyperloop,
                                core::DfsMode::kLineFS};

struct Row {
  double avg = 0;
  double p99 = 0;
  double p999 = 0;
};
std::map<std::pair<int, bool>, Row> g_rows;

Row RunConfig(core::DfsMode mode, bool busy) {
  core::DfsConfig config = BenchConfig(mode);
  // §5.2.5 runs the co-runner and the DFS at default (equal) priority.
  config.host_fs_priority = sim::Priority::kNormal;
  Experiment exp(config);
  if (busy) {
    exp.StartStreamcluster({1, 2}, CoRunnerOptions());
    exp.Drain(50 * sim::kMillisecond);  // Let the co-runner saturate the cores.
  }
  core::LibFs* fs = exp.cluster().CreateClient(0);
  sim::LatencyRecorder recorder;
  std::vector<sim::Task<>> tasks;
  tasks.push_back([](core::LibFs* fs, sim::LatencyRecorder* rec) -> sim::Task<> {
    workloads::BenchResult r =
        co_await workloads::SyncWriteLatency(fs, "/lat.dat", kOps, kIoSize, rec);
    (void)r;
  }(fs, &recorder));
  exp.RunAll(std::move(tasks));
  Row row;
  row.avg = recorder.Mean() / sim::kMicrosecond;
  row.p99 = sim::ToMicros(recorder.Percentile(99));
  row.p999 = sim::ToMicros(recorder.Percentile(99.9));
  exp.SetLabel(std::string(core::DfsModeName(mode)) + (busy ? "/busy" : "/idle"));
  exp.AddScalar("avg_latency_us", row.avg);
  exp.AddScalar("p99_latency_us", row.p99);
  exp.AddScalar("p999_latency_us", row.p999);
  return row;
}

void BM_Table3(benchmark::State& state) {
  core::DfsMode mode = kModes[state.range(0)];
  bool busy = state.range(1) != 0;
  Row row;
  for (auto _ : state) {
    row = RunConfig(mode, busy);
  }
  g_rows[{static_cast<int>(state.range(0)), busy}] = row;
  state.counters["avg_us"] = row.avg;
  state.counters["p99_us"] = row.p99;
  state.counters["p999_us"] = row.p999;
  state.SetLabel(std::string(core::DfsModeName(mode)) + (busy ? "/busy" : "/idle"));
}

void PrintTable() {
  std::printf("\n=== Table 3: write+fsync latency (us) ===\n");
  std::printf("%-20s | %25s | %25s\n", "", "replicas idle", "replicas busy");
  std::printf("%-20s | %7s %8s %8s | %7s %8s %8s\n", "system", "avg", "99th", "99.9th", "avg",
              "99th", "99.9th");
  for (int m = 0; m < 3; ++m) {
    const Row& idle = g_rows[{m, false}];
    const Row& busy = g_rows[{m, true}];
    std::printf("%-20s | %7.0f %8.0f %8.0f | %7.0f %8.0f %8.0f\n",
                core::DfsModeName(kModes[m]), idle.avg, idle.p99, idle.p999, busy.avg,
                busy.p99, busy.p999);
  }
}

}  // namespace
}  // namespace linefs::bench

BENCHMARK(linefs::bench::BM_Table3)
    ->ArgsProduct({{0, 1, 2}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  linefs::bench::PrintTable();
  return linefs::bench::WriteBenchReport("table3_latency");
}
