// Figure 5: publish and replication pipeline latency breakdown for one 4MB
// chunk (fetching / validation / publication-or-transfer / ack).
//
// Paper shape: fetching and publication/transfer dominate (they cross the
// high-latency interconnects: PCIe ~1ms for 4MB, network ~1.5-1.8ms);
// validation is hundreds of microseconds of wimpy-core compute; acks are
// tens of microseconds. Publish and replication share fetch+validate, so
// those stage latencies are identical by construction.
//
// Window sweep: on top of the breakdown, sweeps the windowed data path —
// transfer_window in {1,2,4,8} crossed with fetch_depth in {1,4} — over a
// seq-write+fsync run. transfer_window=1 takes the legacy blocking round-trip
// control path (the pre-windowing lock-step schedule), so the sweep measures
// the one-way control conversion and the sliding window together: throughput
// must be monotone-or-flat in the window and the fsync critical path's
// replicate-net + wait share must shrink as the window opens.

#include <benchmark/benchmark.h>

#include "bench/harness.h"
#include "src/pipeline/registry.h"
#include "src/workloads/microbench.h"

namespace linefs::bench {
namespace {

struct Breakdown {
  double fetch_us = 0;
  double validate_us = 0;
  double publish_us = 0;
  double transfer_us = 0;
  double ack_us = 0;
};
Breakdown g_result;

Breakdown Run() {
  Experiment exp(BenchConfig(core::DfsMode::kLineFS));
  core::LibFs* fs = exp.cluster().CreateClient(0);
  std::vector<sim::Task<>> tasks;
  tasks.push_back([](core::LibFs* fs) -> sim::Task<> {
    // Write exactly 16 chunks' worth so stage recorders average over several.
    workloads::BenchResult r = co_await workloads::SeqWrite(fs, "/p.dat", 64ULL << 20, 1 << 20);
    (void)r;
  }(fs));
  exp.RunAll(std::move(tasks));
  exp.Drain(10 * sim::kSecond);

  core::NicFs::StatsSnapshot stats = exp.cluster().nicfs(0)->stats();
  auto stage_us = [&stats](const char* name) {
    auto it = stats.stages.find(name);
    return it == stats.stages.end()
               ? 0.0
               : sim::ToMicros(static_cast<sim::Time>(it->second.latency.mean));
  };
  Breakdown b;
  b.fetch_us = stage_us("fetch");
  b.validate_us = stage_us("validate");
  b.publish_us = stage_us("publish");
  b.transfer_us = stage_us("transfer");
  b.ack_us = stage_us("ack");
  exp.SetLabel("LineFS/pipeline_breakdown");
  exp.AddScalar("fetch_us", b.fetch_us);
  exp.AddScalar("validate_us", b.validate_us);
  exp.AddScalar("publish_us", b.publish_us);
  exp.AddScalar("transfer_us", b.transfer_us);
  exp.AddScalar("ack_us", b.ack_us);
  return b;
}

// --- stage mix --------------------------------------------------------------------------
//
// Same workload as the breakdown, but with optional plugin stages composed
// into the replication chain (DfsConfig::pipeline_stages). Informational in
// the perf gate (new configs have no baseline); the table shows what each
// plugin adds to per-chunk latency and where it queues.

struct StageMixPoint {
  std::string mix;
  double gbps = 0;
  // Per-stage latency and mean wait-queue occupancy, chain order.
  std::vector<std::pair<std::string, double>> stage_us;
  std::vector<std::pair<std::string, double>> stage_q;
  double host_placements = 0;   // Host-fallback run only.
  double remote_placements = 0;
};
std::vector<StageMixPoint> g_mix;

StageMixPoint RunStageMix(const char* mix_name, const std::string& stages,
                          bool host_fallback) {
  core::DfsConfig config = BenchConfig(core::DfsMode::kLineFS);
  config.pipeline_stages = stages;
  config.chunk_size = 1ULL << 20;
  if (host_fallback) {
    // Saturate every NIC so grown workers spill to host cores: pooled
    // placement on, an aggressive saturation mark, and a hair-trigger grow
    // threshold while plugin stages burn wimpy-core cycles on every chunk.
    config.placer_pooling = true;
    config.placer_nic_saturation = 0.05;
    config.stage_queue_threshold = 1;
    config.max_stage_workers = 4;
  }
  Experiment exp(config);
  workloads::BenchResult result;
  std::vector<sim::Task<>> tasks;
  // One writer per node keeps all NICs busy (required for the fallback run:
  // a remote NIC with idle cores would absorb the spill first).
  int writers = host_fallback ? exp.cluster().num_nodes() : 1;
  for (int w = 0; w < writers; ++w) {
    core::LibFs* fs = exp.cluster().CreateClient(w % exp.cluster().num_nodes());
    tasks.push_back([](core::LibFs* fs, int w, workloads::BenchResult* out) -> sim::Task<> {
      char path[32];
      std::snprintf(path, sizeof(path), "/mix%d.dat", w);
      workloads::BenchResult r = co_await workloads::SeqWrite(fs, path, 32ULL << 20, 1 << 20);
      out->bytes += r.bytes;
      out->ops += r.ops;
      out->elapsed = std::max(out->elapsed, r.elapsed);
    }(fs, w, &result));
  }
  exp.RunAll(std::move(tasks));
  exp.Drain(10 * sim::kSecond);

  StageMixPoint p;
  p.mix = mix_name;
  p.gbps = result.throughput() / 1e9;
  char label[64];
  std::snprintf(label, sizeof(label), "LineFS/stage_mix/%s", mix_name);
  exp.SetLabel(label);
  exp.AddScalar("throughput_gbps", p.gbps);

  core::NicFs::StatsSnapshot stats = exp.cluster().nicfs(0)->stats();
  obs::MetricsRegistry::Snapshot metrics = exp.cluster().metrics().TakeSnapshot();
  for (const std::string& name : pipeline::ParseStageList(stages)) {
    auto it = stats.stages.find(name);
    if (it == stats.stages.end()) {
      continue;
    }
    double us = sim::ToMicros(static_cast<sim::Time>(it->second.latency.mean));
    p.stage_us.emplace_back(name, us);
    exp.AddScalar(name + "_us", us);
    // Mean wait-queue occupancy sampled by the profiler (nicfs.0 scope).
    const obs::Histogram* q =
        exp.cluster().metrics().FindHistogram("nicfs.0.qdepth." + name);
    double occupancy = q != nullptr ? q->Summarize().mean : 0.0;
    p.stage_q.emplace_back(name, occupancy);
    exp.AddScalar(name + "_qdepth", occupancy);
  }
  if (host_fallback) {
    p.host_placements =
        static_cast<double>(metrics.counters["placer.placements.host"]);
    p.remote_placements =
        static_cast<double>(metrics.counters["placer.placements.remote"]);
    exp.AddScalar("host_placements", p.host_placements);
    exp.AddScalar("remote_placements", p.remote_placements);
  }
  return p;
}

// --- window sweep -----------------------------------------------------------------------

struct WindowPoint {
  int transfer_window = 1;
  int fetch_depth = 1;
  double gbps = 0;
  double fsync_ms = 0;
  double replicate_net_pct = 0;
  double wait_pct = 0;
};
std::vector<WindowPoint> g_sweep;

WindowPoint RunWindowPoint(int transfer_window, int fetch_depth) {
  core::DfsConfig config = BenchConfig(core::DfsMode::kLineFS);
  config.repl.transfer_window = transfer_window;
  config.repl.fetch_depth = fetch_depth;
  // The tw=1 points measure the legacy blocking round-trip schedule, which is
  // now the explicit chain_sync protocol (a window of 1 on plain chain would
  // still use one-way posts and ack out-of-band).
  if (transfer_window == 1) {
    config.repl.protocol = "chain_sync";
  }
  // 1MB chunks: more control operations per byte, so the sweep isolates what
  // the window actually removes (per-chunk round trips and send-completion
  // waits) instead of burying it under 4MB serialization time.
  config.chunk_size = 1ULL << 20;
  Experiment exp(config);
  core::LibFs* fs = exp.cluster().CreateClient(0);
  workloads::BenchResult result;
  std::vector<sim::Task<>> tasks;
  // Bursts of 8 chunks, each followed by fsync: every fsync drains a
  // multi-chunk backlog through the windowed pipeline, so its critical path
  // owns the fetch/transfer chain the window is supposed to overlap (one
  // giant write would instead drain almost entirely under background publish
  // kicks and the fsync would only ever record undifferentiated wait).
  tasks.push_back([](core::LibFs* fs, workloads::BenchResult* out) -> sim::Task<> {
    for (int burst = 0; burst < 8; ++burst) {
      char path[32];
      std::snprintf(path, sizeof(path), "/w%d.dat", burst);
      workloads::BenchResult r = co_await workloads::SeqWrite(fs, path, 8ULL << 20, 1 << 20);
      out->bytes += r.bytes;
      out->ops += r.ops;
      out->elapsed += r.elapsed;
    }
  }(fs, &result));
  exp.RunAll(std::move(tasks));
  exp.Drain(10 * sim::kSecond);

  WindowPoint p;
  p.transfer_window = transfer_window;
  p.fetch_depth = fetch_depth;
  p.gbps = result.throughput() / 1e9;

  // Attribute the fsync's end-to-end latency to pipeline stages: the window
  // should drain replicate-net (round trips, send completions) and wait
  // (stalls with no stage active) out of the critical path.
  obs::CriticalPathAnalyzer analyzer(&exp.cluster().trace());
  std::vector<obs::OpBreakdown> ops = analyzer.Operations("fsync");
  sim::Time total = 0;
  std::map<std::string, sim::Time> table = obs::CriticalPathAnalyzer::StageTable(ops);
  for (const auto& [stage, t] : table) {
    total += t;
  }
  sim::Time fsync_total = 0;
  for (const obs::OpBreakdown& op : ops) {
    fsync_total += op.duration();
  }
  p.fsync_ms = sim::ToMicros(fsync_total) / 1000.0;
  if (total > 0) {
    p.replicate_net_pct = 100.0 * static_cast<double>(table["replicate-net"]) / total;
    p.wait_pct = 100.0 * static_cast<double>(table["wait"]) / total;
  }

  char label[64];
  std::snprintf(label, sizeof(label), "LineFS/window_sweep/tw%d_fd%d", transfer_window,
                fetch_depth);
  exp.SetLabel(label);
  exp.AddScalar("throughput_gbps", p.gbps);
  exp.AddScalar("fsync_ms", p.fsync_ms);
  exp.AddScalar("replicate_net_pct", p.replicate_net_pct);
  exp.AddScalar("wait_pct", p.wait_pct);
  return p;
}

void BM_WindowSweep(benchmark::State& state) {
  for (auto _ : state) {
    g_sweep.clear();
    for (int fd : {1, 4}) {
      for (int tw : {1, 2, 4, 8}) {
        g_sweep.push_back(RunWindowPoint(tw, fd));
      }
    }
  }
  for (const WindowPoint& p : g_sweep) {
    char key[48];
    std::snprintf(key, sizeof(key), "tw%d_fd%d_gbps", p.transfer_window, p.fetch_depth);
    state.counters[key] = p.gbps;
  }
}

void BM_StageMix(benchmark::State& state) {
  for (auto _ : state) {
    g_mix.clear();
    g_mix.push_back(RunStageMix("baseline", "validate", false));
    g_mix.push_back(RunStageMix("checksum", "validate,checksum", false));
    g_mix.push_back(RunStageMix("encrypt", "validate,xor_encrypt", false));
    g_mix.push_back(
        RunStageMix("host_fallback", "validate,xor_encrypt,checksum", true));
  }
  for (const StageMixPoint& p : g_mix) {
    state.counters[p.mix + "_gbps"] = p.gbps;
  }
}

void BM_Fig5(benchmark::State& state) {
  for (auto _ : state) {
    g_result = Run();
  }
  state.counters["fetch_us"] = g_result.fetch_us;
  state.counters["validate_us"] = g_result.validate_us;
  state.counters["publish_us"] = g_result.publish_us;
  state.counters["transfer_us"] = g_result.transfer_us;
  state.counters["ack_us"] = g_result.ack_us;
}

void PrintTable() {
  const Breakdown& b = g_result;
  std::printf("\n=== Figure 5: pipeline latency breakdown per 4MB chunk (us) ===\n");
  std::printf("%-12s %9s %10s %18s %8s %9s\n", "pipeline", "fetch", "validate",
              "publish/transfer", "ack", "total");
  std::printf("%-12s %9.0f %10.0f %18.0f %8.0f %9.0f\n", "publish", b.fetch_us, b.validate_us,
              b.publish_us, b.ack_us, b.fetch_us + b.validate_us + b.publish_us + b.ack_us);
  std::printf("%-12s %9.0f %10.0f %18.0f %8.0f %9.0f\n", "replication", b.fetch_us,
              b.validate_us, b.transfer_us, b.ack_us,
              b.fetch_us + b.validate_us + b.transfer_us + b.ack_us);
  std::printf("(fetch and validation are shared between the two pipelines)\n");

  std::printf("\n=== Window sweep: 64MB seq write + fsync (transfer_window x fetch_depth) ===\n");
  std::printf("%-10s %6s %12s %10s %16s %9s\n", "config", "tw", "fetch_depth", "GB/s",
              "replicate-net %", "wait %");
  for (const WindowPoint& p : g_sweep) {
    char name[32];
    std::snprintf(name, sizeof(name), "tw%d_fd%d", p.transfer_window, p.fetch_depth);
    std::printf("%-10s %6d %12d %10.3f %16.1f %9.1f\n", name, p.transfer_window,
                p.fetch_depth, p.gbps, p.replicate_net_pct, p.wait_pct);
  }
  std::printf("(tw=1 is the legacy blocking round-trip control path)\n");

  std::printf("\n=== Stage mix: plugin stages in the replication chain (1MB chunks) ===\n");
  std::printf("%-14s %8s  %-44s %s\n", "mix", "GB/s", "stage latency us (mean)",
              "queue occupancy");
  for (const StageMixPoint& p : g_mix) {
    char stages[128] = "";
    char queues[96] = "";
    size_t off = 0;
    for (const auto& [name, us] : p.stage_us) {
      off += std::snprintf(stages + off, sizeof(stages) - off, "%s=%.0f ", name.c_str(), us);
    }
    off = 0;
    for (const auto& [name, q] : p.stage_q) {
      off += std::snprintf(queues + off, sizeof(queues) - off, "%s=%.1f ", name.c_str(), q);
    }
    std::printf("%-14s %8.3f  %-44s %s\n", p.mix.c_str(), p.gbps, stages, queues);
    if (p.mix == "host_fallback") {
      std::printf("%-14s placements: host=%.0f remote=%.0f (NICs saturated, pooled "
                  "placer spills to host cores)\n",
                  "", p.host_placements, p.remote_placements);
    }
  }
}

}  // namespace
}  // namespace linefs::bench

BENCHMARK(linefs::bench::BM_Fig5)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(linefs::bench::BM_WindowSweep)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(linefs::bench::BM_StageMix)->Iterations(1)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  linefs::bench::PrintTable();
  return linefs::bench::WriteBenchReport("fig5_pipeline");
}
