// Figure 5: publish and replication pipeline latency breakdown for one 4MB
// chunk (fetching / validation / publication-or-transfer / ack).
//
// Paper shape: fetching and publication/transfer dominate (they cross the
// high-latency interconnects: PCIe ~1ms for 4MB, network ~1.5-1.8ms);
// validation is hundreds of microseconds of wimpy-core compute; acks are
// tens of microseconds. Publish and replication share fetch+validate, so
// those stage latencies are identical by construction.

#include <benchmark/benchmark.h>

#include "bench/harness.h"
#include "src/workloads/microbench.h"

namespace linefs::bench {
namespace {

struct Breakdown {
  double fetch_us = 0;
  double validate_us = 0;
  double publish_us = 0;
  double transfer_us = 0;
  double ack_us = 0;
};
Breakdown g_result;

Breakdown Run() {
  Experiment exp(BenchConfig(core::DfsMode::kLineFS));
  core::LibFs* fs = exp.cluster().CreateClient(0);
  std::vector<sim::Task<>> tasks;
  tasks.push_back([](core::LibFs* fs) -> sim::Task<> {
    // Write exactly 16 chunks' worth so stage recorders average over several.
    workloads::BenchResult r = co_await workloads::SeqWrite(fs, "/p.dat", 64ULL << 20, 1 << 20);
    (void)r;
  }(fs));
  exp.RunAll(std::move(tasks));
  exp.Drain(10 * sim::kSecond);

  core::NicFs::StatsSnapshot stats = exp.cluster().nicfs(0)->stats();
  Breakdown b;
  b.fetch_us = sim::ToMicros(static_cast<sim::Time>(stats.stage_fetch.mean));
  b.validate_us = sim::ToMicros(static_cast<sim::Time>(stats.stage_validate.mean));
  b.publish_us = sim::ToMicros(static_cast<sim::Time>(stats.stage_publish.mean));
  b.transfer_us = sim::ToMicros(static_cast<sim::Time>(stats.stage_transfer.mean));
  b.ack_us = sim::ToMicros(static_cast<sim::Time>(stats.stage_ack.mean));
  exp.SetLabel("LineFS/pipeline_breakdown");
  exp.AddScalar("fetch_us", b.fetch_us);
  exp.AddScalar("validate_us", b.validate_us);
  exp.AddScalar("publish_us", b.publish_us);
  exp.AddScalar("transfer_us", b.transfer_us);
  exp.AddScalar("ack_us", b.ack_us);
  return b;
}

void BM_Fig5(benchmark::State& state) {
  for (auto _ : state) {
    g_result = Run();
  }
  state.counters["fetch_us"] = g_result.fetch_us;
  state.counters["validate_us"] = g_result.validate_us;
  state.counters["publish_us"] = g_result.publish_us;
  state.counters["transfer_us"] = g_result.transfer_us;
  state.counters["ack_us"] = g_result.ack_us;
}

void PrintTable() {
  const Breakdown& b = g_result;
  std::printf("\n=== Figure 5: pipeline latency breakdown per 4MB chunk (us) ===\n");
  std::printf("%-12s %9s %10s %18s %8s %9s\n", "pipeline", "fetch", "validate",
              "publish/transfer", "ack", "total");
  std::printf("%-12s %9.0f %10.0f %18.0f %8.0f %9.0f\n", "publish", b.fetch_us, b.validate_us,
              b.publish_us, b.ack_us, b.fetch_us + b.validate_us + b.publish_us + b.ack_us);
  std::printf("%-12s %9.0f %10.0f %18.0f %8.0f %9.0f\n", "replication", b.fetch_us,
              b.validate_us, b.transfer_us, b.ack_us,
              b.fetch_us + b.validate_us + b.transfer_us + b.ack_us);
  std::printf("(fetch and validation are shared between the two pipelines)\n");
}

}  // namespace
}  // namespace linefs::bench

BENCHMARK(linefs::bench::BM_Fig5)->Iterations(1)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  linefs::bench::PrintTable();
  return linefs::bench::WriteBenchReport("fig5_pipeline");
}
