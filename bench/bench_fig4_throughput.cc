// Figure 4: write throughput scalability when replicas are idle and busy.
//
// Each client writes a private file sequentially (16KB IOs) and calls fsync
// at the end (§5.2.1); throughput is aggregate bytes over the makespan.
// "Busy" runs streamcluster on both replicas with the DFS prioritised above
// it, exactly as in the paper.
//
// Paper shapes to reproduce: idle — Assise worst at 1 client (~0.65 GB/s),
// LineFS ~2.3x Assise at 1 client, network saturation (~2.2 GB/s) at 2
// clients for LineFS vs 4 for Assise, LineFS-NotParallel >= 60% below LineFS;
// busy — nobody saturates, LineFS degrades least.
//
// An extra LineFS row runs the quorum replication protocol (ISSUE 7): the
// primary fans every chunk out to both replicas itself, so it pushes 2x the
// wire bytes of chain forwarding and commits at the majority ack. Those runs
// are labelled with a "proto_quorum" suffix and are informational in
// bench_compare — the paper's chain rows stay the gated baseline.

#include <benchmark/benchmark.h>

#include <map>

#include "bench/harness.h"
#include "src/workloads/microbench.h"

namespace linefs::bench {
namespace {

constexpr uint64_t kBytesPerClient = 192ULL << 20;  // Scaled from 12GB.
constexpr uint64_t kIoSize = 16 << 10;

const core::DfsMode kModes[] = {
    core::DfsMode::kAssise,     core::DfsMode::kAssiseBgRepl,
    core::DfsMode::kAssiseHyperloop, core::DfsMode::kLineFSNotParallel,
    core::DfsMode::kLineFS,
};

// Row 5 of the table: LineFS again, on the quorum protocol.
constexpr int kQuorumRow = 5;

struct Key {
  int mode;
  bool busy;
  int clients;
  bool operator<(const Key& o) const {
    return std::tie(mode, busy, clients) < std::tie(o.mode, o.busy, o.clients);
  }
};
std::map<Key, double> g_results;

double RunConfig(core::DfsMode mode, bool busy, int clients, const std::string& protocol) {
  core::DfsConfig config = BenchConfig(mode);
  config.max_clients = 8;
  config.repl.protocol = protocol;
  // Busy runs give the DFS higher scheduling priority (§5.2.1).
  config.host_fs_priority = busy ? sim::Priority::kHigh : sim::Priority::kNormal;
  Experiment exp(config);
  if (busy) {
    exp.StartStreamcluster({1, 2}, CoRunnerOptions());
  }
  std::vector<core::LibFs*> fss;
  for (int c = 0; c < clients; ++c) {
    fss.push_back(exp.cluster().CreateClient(0));
  }
  sim::Time start = exp.engine().Now();
  std::vector<sim::Task<>> tasks;
  for (int c = 0; c < clients; ++c) {
    tasks.push_back([](core::LibFs* fs, int c) -> sim::Task<> {
      workloads::BenchResult r = co_await workloads::SeqWrite(
          fs, "/w" + std::to_string(c) + ".dat", kBytesPerClient, kIoSize);
      (void)r;
    }(fss[c], c));
  }
  exp.RunAll(std::move(tasks));
  sim::Time elapsed = exp.engine().Now() - start;
  double tput = static_cast<double>(kBytesPerClient) * clients / sim::ToSeconds(elapsed);
  std::string label = std::string(core::DfsModeName(mode)) + (busy ? "/busy/" : "/idle/") +
                      std::to_string(clients) + "clients";
  if (protocol != "chain") {
    label += "/proto_" + protocol;
  }
  exp.SetLabel(label);
  exp.AddScalar("throughput_bytes_per_sec", tput);
  return tput;
}

void BM_Fig4(benchmark::State& state) {
  const bool quorum = state.range(0) == kQuorumRow;
  core::DfsMode mode = quorum ? core::DfsMode::kLineFS : kModes[state.range(0)];
  bool busy = state.range(1) != 0;
  int clients = static_cast<int>(state.range(2));
  double tput = 0;
  for (auto _ : state) {
    tput = RunConfig(mode, busy, clients, quorum ? "quorum" : "chain");
  }
  g_results[Key{static_cast<int>(state.range(0)), busy, clients}] = tput;
  state.counters["GB/s"] = tput / 1e9;
  state.SetLabel(std::string(core::DfsModeName(mode)) + (quorum ? "-quorum" : "") +
                 (busy ? "/busy" : "/idle"));
}

void PrintTable() {
  for (int busy = 0; busy <= 1; ++busy) {
    std::printf("\n=== Figure 4: write throughput (GB/s), replicas %s ===\n",
                busy ? "busy" : "idle");
    std::printf("%-22s %8s %8s %8s %8s\n", "system", "1", "2", "4", "8");
    for (int m = 0; m <= kQuorumRow; ++m) {
      std::printf("%-22s", m == kQuorumRow ? "LineFS (quorum repl)"
                                           : core::DfsModeName(kModes[m]));
      for (int clients : {1, 2, 4, 8}) {
        auto it = g_results.find(Key{m, busy != 0, clients});
        std::printf(" %8.2f", it != g_results.end() ? it->second / 1e9 : 0.0);
      }
      std::printf("\n");
    }
  }
}

}  // namespace
}  // namespace linefs::bench

BENCHMARK(linefs::bench::BM_Fig4)
    ->ArgsProduct({{0, 1, 2, 3, 4, 5}, {0, 1}, {1, 2, 4, 8}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  linefs::bench::PrintTable();
  return linefs::bench::WriteBenchReport("fig4_throughput");
}
