// Figure 10: extended NICFS availability — Varmail throughput timeline while
// replica-1's host OS crashes at t=8s and recovers at t=16s.
//
// Paper shape: replica-1's NICFS detects the dead kernel worker, switches to
// isolated operation (publication via RDMA across PCIe), and keeps serving
// the replication chain: Varmail throughput holds steady through the crash
// window; when the host returns, the stateless kernel worker resumes.
//
// The crash/recovery schedule is a fault::FaultPlan applied by fault::Injector
// (the same machinery as the torture harness), so the window is replayable
// from its one-line spec. DESIGN.md §4's shape target — "no throughput
// collapse during the crash window" — is asserted: the worst per-second
// bucket inside the window must hold at least kNoCollapseFloor of the
// pre-crash mean, and a violation fails the binary with a nonzero exit.

#include <benchmark/benchmark.h>

#include "bench/harness.h"
#include "src/core/nicfs.h"
#include "src/fault/injector.h"
#include "src/fault/plan.h"
#include "src/workloads/filebench.h"

namespace linefs::bench {
namespace {

constexpr sim::Time kCrashAt = 8 * sim::kSecond;
constexpr sim::Time kRecoverAt = 16 * sim::kSecond;
constexpr sim::Time kRunFor = 25 * sim::kSecond;
// DESIGN.md §4: no throughput collapse during the crash window. The floor is
// deliberately loose — the claim is "no collapse", not "no dip".
constexpr double kNoCollapseFloor = 0.4;

std::vector<double> g_kops_series;
bool g_went_isolated = false;
bool g_returned = false;
bool g_shape_ok = false;
double g_precrash_mean_kops = 0;
double g_crash_window_min_kops = 0;
std::string g_plan_spec;

void Run() {
  core::DfsConfig config = BenchConfig(core::DfsMode::kLineFS);
  Experiment exp(config);
  core::LibFs* fs = exp.cluster().CreateClient(0);

  // Fault injection: crash replica-1's host at 8s, recover at 16s.
  fault::FaultPlan plan;
  plan.CrashHost(1, kCrashAt, kRecoverAt);
  g_plan_spec = plan.ToSpec();
  fault::Injector injector(&exp.cluster(), std::move(plan));
  Status armed = injector.Arm();
  if (!armed.ok()) {
    std::fprintf(stderr, "fig10: cannot arm fault plan: %s\n", armed.message().c_str());
    std::abort();
  }

  // Probe isolated-mode transitions.
  exp.engine().Spawn([](Experiment* exp) -> sim::Task<> {
    while (exp->engine().Now() < kRunFor) {
      co_await exp->engine().SleepFor(250 * sim::kMillisecond);
      sim::Time now = exp->engine().Now();
      bool isolated = exp->cluster().nicfs(1)->isolated();
      if (now > kCrashAt + sim::kSecond && now < kRecoverAt && isolated) {
        g_went_isolated = true;
      }
      if (now > kRecoverAt + 2 * sim::kSecond && !isolated) {
        g_returned = true;
      }
    }
  }(&exp));

  workloads::Filebench::Options options = workloads::Filebench::VarmailOptions(1000);
  workloads::Filebench bench(fs, options);
  std::vector<sim::Task<>> tasks;
  tasks.push_back([](workloads::Filebench* bench) -> sim::Task<> {
    co_await bench->Preallocate();
    co_await bench->Run(kRunFor);
  }(&bench));
  exp.RunAll(std::move(tasks));

  g_kops_series.clear();
  // Skip the preallocation phase: report per-second kops once Run() started.
  for (size_t i = 0; i < bench.ops_series().bucket_count(); ++i) {
    g_kops_series.push_back(bench.ops_series().RateAt(i) / 1000.0);
  }

  // Shape assertion: the worst bucket fully inside the crash window must not
  // collapse relative to the settled pre-crash mean (buckets 2..7; the first
  // two are warm-up).
  const size_t crash_bucket = static_cast<size_t>(kCrashAt / sim::kSecond);
  const size_t recover_bucket = static_cast<size_t>(kRecoverAt / sim::kSecond);
  double pre_sum = 0;
  size_t pre_n = 0;
  for (size_t i = 2; i < crash_bucket - 1 && i < g_kops_series.size(); ++i) {
    pre_sum += g_kops_series[i];
    ++pre_n;
  }
  g_precrash_mean_kops = pre_n > 0 ? pre_sum / static_cast<double>(pre_n) : 0;
  g_crash_window_min_kops = 0;
  bool first = true;
  // Skip the bucket containing the crash edge itself (failure detection spans
  // it); every later full bucket in the window counts.
  for (size_t i = crash_bucket + 1; i < recover_bucket && i < g_kops_series.size(); ++i) {
    if (first || g_kops_series[i] < g_crash_window_min_kops) {
      g_crash_window_min_kops = g_kops_series[i];
      first = false;
    }
  }
  g_shape_ok = !first && g_precrash_mean_kops > 0 &&
               g_crash_window_min_kops >= kNoCollapseFloor * g_precrash_mean_kops;

  double sum = 0;
  for (double k : g_kops_series) {
    sum += k;
  }
  exp.SetLabel("LineFS/replica_host_crash");
  exp.AddScalar("throughput_kops_per_sec",
                g_kops_series.empty() ? 0 : sum / static_cast<double>(g_kops_series.size()));
  exp.AddScalar("precrash_mean_kops", g_precrash_mean_kops);
  exp.AddScalar("crash_window_min_kops", g_crash_window_min_kops);
  exp.AddScalar("no_collapse_shape_ok", g_shape_ok ? 1 : 0);
  exp.AddScalar("went_isolated", g_went_isolated ? 1 : 0);
  exp.AddScalar("resumed_host_mode", g_returned ? 1 : 0);
  exp.AddScalar("fault_edges_applied", static_cast<double>(injector.edges_applied()));
}

void BM_Fig10(benchmark::State& state) {
  for (auto _ : state) {
    Run();
  }
  state.counters["went_isolated"] = g_went_isolated ? 1 : 0;
  state.counters["resumed_host_mode"] = g_returned ? 1 : 0;
  state.counters["no_collapse_shape_ok"] = g_shape_ok ? 1 : 0;
}

void PrintTable() {
  std::printf("\n=== Figure 10: Varmail throughput timeline across a replica host crash ===\n");
  std::printf("Fault plan: %s", g_plan_spec.c_str());
  std::printf("NICFS switched to isolated mode during the crash: %s\n",
              g_went_isolated ? "YES" : "NO");
  std::printf("NICFS resumed host-based publication after recovery: %s\n",
              g_returned ? "YES" : "NO");
  std::printf("No-collapse shape (min in-window %.1f kops >= %.0f%% of pre-crash %.1f kops): %s\n",
              g_crash_window_min_kops, kNoCollapseFloor * 100, g_precrash_mean_kops,
              g_shape_ok ? "OK" : "VIOLATED");
  std::printf("\n%6s %12s\n", "t(s)", "kops/s");
  for (size_t i = 0; i < g_kops_series.size() && i < 25; ++i) {
    const char* marker = "";
    if (i == 8) {
      marker = "  <- host crash";
    } else if (i == 16) {
      marker = "  <- host recovered";
    }
    std::printf("%6zu %12.1f%s\n", i, g_kops_series[i], marker);
  }
}

}  // namespace
}  // namespace linefs::bench

BENCHMARK(linefs::bench::BM_Fig10)->Iterations(1)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  linefs::bench::PrintTable();
  int rc = linefs::bench::WriteBenchReport("fig10_availability");
  if (rc != 0) {
    return rc;
  }
  return linefs::bench::g_shape_ok ? 0 : 2;
}
