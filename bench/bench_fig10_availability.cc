// Figure 10: extended NICFS availability — Varmail throughput timeline while
// replica-1's host OS crashes at t=8s and recovers at t=16s.
//
// Paper shape: replica-1's NICFS detects the dead kernel worker, switches to
// isolated operation (publication via RDMA across PCIe), and keeps serving
// the replication chain: Varmail throughput holds steady through the crash
// window; when the host returns, the stateless kernel worker resumes.
//
// The timeline runs once per replication protocol (chain, quorum): isolated
// operation and the no-collapse shape are properties of the NICFS data path,
// so they must hold regardless of replication topology. Per-protocol runs are
// labelled with a "proto_<name>" suffix and their scalars are informational
// in bench_compare (protocols trade latency for fan-out bandwidth; the gate
// only tracks the shape booleans through the report).
//
// The crash/recovery schedule is a fault::FaultPlan applied by fault::Injector
// (the same machinery as the torture harness), so the window is replayable
// from its one-line spec. DESIGN.md §4's shape target — "no throughput
// collapse during the crash window" — is asserted: the worst per-second
// bucket inside the window must hold at least kNoCollapseFloor of the
// pre-crash mean, and a violation fails the binary with a nonzero exit.

#include <benchmark/benchmark.h>

#include "bench/harness.h"
#include "src/core/nicfs.h"
#include "src/fault/injector.h"
#include "src/fault/plan.h"
#include "src/workloads/filebench.h"

namespace linefs::bench {
namespace {

constexpr sim::Time kCrashAt = 8 * sim::kSecond;
constexpr sim::Time kRecoverAt = 16 * sim::kSecond;
constexpr sim::Time kRunFor = 25 * sim::kSecond;
// DESIGN.md §4: no throughput collapse during the crash window. The floor is
// deliberately loose — the claim is "no collapse", not "no dip".
constexpr double kNoCollapseFloor = 0.4;

const char* kProtocols[] = {"chain", "quorum"};

struct Fig10Result {
  std::string protocol;
  std::vector<double> kops_series;
  bool went_isolated = false;
  bool returned = false;
  bool shape_ok = false;
  double precrash_mean_kops = 0;
  double crash_window_min_kops = 0;
};

std::vector<Fig10Result> g_results;
std::string g_plan_spec;

Fig10Result Run(const std::string& protocol) {
  Fig10Result result;
  result.protocol = protocol;

  core::DfsConfig config = BenchConfig(core::DfsMode::kLineFS);
  config.repl.protocol = protocol;
  Experiment exp(config);
  core::LibFs* fs = exp.cluster().CreateClient(0);

  // Fault injection: crash replica-1's host at 8s, recover at 16s.
  fault::FaultPlan plan;
  plan.CrashHost(1, kCrashAt, kRecoverAt);
  g_plan_spec = plan.ToSpec();
  fault::Injector injector(&exp.cluster(), std::move(plan));
  Status armed = injector.Arm();
  if (!armed.ok()) {
    std::fprintf(stderr, "fig10: cannot arm fault plan: %s\n", armed.message().c_str());
    std::abort();
  }

  // Probe isolated-mode transitions.
  exp.engine().Spawn([](Experiment* exp, Fig10Result* result) -> sim::Task<> {
    while (exp->engine().Now() < kRunFor) {
      co_await exp->engine().SleepFor(250 * sim::kMillisecond);
      sim::Time now = exp->engine().Now();
      bool isolated = exp->cluster().nicfs(1)->isolated();
      if (now > kCrashAt + sim::kSecond && now < kRecoverAt && isolated) {
        result->went_isolated = true;
      }
      if (now > kRecoverAt + 2 * sim::kSecond && !isolated) {
        result->returned = true;
      }
    }
  }(&exp, &result));

  workloads::Filebench::Options options = workloads::Filebench::VarmailOptions(1000);
  workloads::Filebench bench(fs, options);
  std::vector<sim::Task<>> tasks;
  tasks.push_back([](workloads::Filebench* bench) -> sim::Task<> {
    co_await bench->Preallocate();
    co_await bench->Run(kRunFor);
  }(&bench));
  exp.RunAll(std::move(tasks));

  // Skip the preallocation phase: report per-second kops once Run() started.
  for (size_t i = 0; i < bench.ops_series().bucket_count(); ++i) {
    result.kops_series.push_back(bench.ops_series().RateAt(i) / 1000.0);
  }

  // Shape assertion: the worst bucket fully inside the crash window must not
  // collapse relative to the settled pre-crash mean (buckets 2..7; the first
  // two are warm-up).
  const size_t crash_bucket = static_cast<size_t>(kCrashAt / sim::kSecond);
  const size_t recover_bucket = static_cast<size_t>(kRecoverAt / sim::kSecond);
  double pre_sum = 0;
  size_t pre_n = 0;
  for (size_t i = 2; i < crash_bucket - 1 && i < result.kops_series.size(); ++i) {
    pre_sum += result.kops_series[i];
    ++pre_n;
  }
  result.precrash_mean_kops = pre_n > 0 ? pre_sum / static_cast<double>(pre_n) : 0;
  bool first = true;
  // Skip the bucket containing the crash edge itself (failure detection spans
  // it); every later full bucket in the window counts.
  for (size_t i = crash_bucket + 1; i < recover_bucket && i < result.kops_series.size(); ++i) {
    if (first || result.kops_series[i] < result.crash_window_min_kops) {
      result.crash_window_min_kops = result.kops_series[i];
      first = false;
    }
  }
  result.shape_ok = !first && result.precrash_mean_kops > 0 &&
                    result.crash_window_min_kops >= kNoCollapseFloor * result.precrash_mean_kops;

  double sum = 0;
  for (double k : result.kops_series) {
    sum += k;
  }
  exp.SetLabel("LineFS/replica_host_crash/proto_" + protocol);
  exp.AddScalar("throughput_kops_per_sec",
                result.kops_series.empty()
                    ? 0
                    : sum / static_cast<double>(result.kops_series.size()));
  exp.AddScalar("precrash_mean_kops", result.precrash_mean_kops);
  exp.AddScalar("crash_window_min_kops", result.crash_window_min_kops);
  exp.AddScalar("no_collapse_shape_ok", result.shape_ok ? 1 : 0);
  exp.AddScalar("went_isolated", result.went_isolated ? 1 : 0);
  exp.AddScalar("resumed_host_mode", result.returned ? 1 : 0);
  exp.AddScalar("fault_edges_applied", static_cast<double>(injector.edges_applied()));
  return result;
}

bool AllShapesOk() {
  if (g_results.empty()) {
    return false;
  }
  for (const Fig10Result& r : g_results) {
    if (!r.shape_ok || !r.went_isolated || !r.returned) {
      return false;
    }
  }
  return true;
}

void BM_Fig10(benchmark::State& state) {
  for (auto _ : state) {
    g_results.clear();
    for (const char* protocol : kProtocols) {
      g_results.push_back(Run(protocol));
    }
  }
  state.counters["protocols_ok"] = AllShapesOk() ? 1 : 0;
}

void PrintTable() {
  std::printf("\n=== Figure 10: Varmail throughput timeline across a replica host crash ===\n");
  std::printf("Fault plan: %s", g_plan_spec.c_str());
  for (const Fig10Result& r : g_results) {
    std::printf("\n--- replication protocol: %s ---\n", r.protocol.c_str());
    std::printf("NICFS switched to isolated mode during the crash: %s\n",
                r.went_isolated ? "YES" : "NO");
    std::printf("NICFS resumed host-based publication after recovery: %s\n",
                r.returned ? "YES" : "NO");
    std::printf(
        "No-collapse shape (min in-window %.1f kops >= %.0f%% of pre-crash %.1f kops): %s\n",
        r.crash_window_min_kops, kNoCollapseFloor * 100, r.precrash_mean_kops,
        r.shape_ok ? "OK" : "VIOLATED");
    std::printf("\n%6s %12s\n", "t(s)", "kops/s");
    for (size_t i = 0; i < r.kops_series.size() && i < 25; ++i) {
      const char* marker = "";
      if (i == 8) {
        marker = "  <- host crash";
      } else if (i == 16) {
        marker = "  <- host recovered";
      }
      std::printf("%6zu %12.1f%s\n", i, r.kops_series[i], marker);
    }
  }
}

}  // namespace
}  // namespace linefs::bench

BENCHMARK(linefs::bench::BM_Fig10)->Iterations(1)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  linefs::bench::PrintTable();
  int rc = linefs::bench::WriteBenchReport("fig10_availability");
  if (rc != 0) {
    return rc;
  }
  return linefs::bench::AllShapesOk() ? 0 : 2;
}
