// Figure 10: extended NICFS availability — Varmail throughput timeline while
// replica-1's host OS crashes at t=8s and recovers at t=16s.
//
// Paper shape: replica-1's NICFS detects the dead kernel worker, switches to
// isolated operation (publication via RDMA across PCIe), and keeps serving
// the replication chain: Varmail throughput holds steady through the crash
// window; when the host returns, the stateless kernel worker resumes.

#include <benchmark/benchmark.h>

#include "bench/harness.h"
#include "src/core/nicfs.h"
#include "src/workloads/filebench.h"

namespace linefs::bench {
namespace {

constexpr sim::Time kCrashAt = 8 * sim::kSecond;
constexpr sim::Time kRecoverAt = 16 * sim::kSecond;
constexpr sim::Time kRunFor = 25 * sim::kSecond;

std::vector<double> g_kops_series;
bool g_went_isolated = false;
bool g_returned = false;

void Run() {
  core::DfsConfig config = BenchConfig(core::DfsMode::kLineFS);
  Experiment exp(config);
  core::LibFs* fs = exp.cluster().CreateClient(0);

  // Fault injection: crash replica-1's host at 8s, recover at 16s.
  exp.engine().Spawn([](Experiment* exp) -> sim::Task<> {
    co_await exp->engine().SleepUntil(kCrashAt);
    exp->cluster().hw_node(1).CrashHost();
    co_await exp->engine().SleepUntil(kRecoverAt);
    exp->cluster().hw_node(1).RecoverHost();
  }(&exp));
  // Probe isolated-mode transitions.
  exp.engine().Spawn([](Experiment* exp) -> sim::Task<> {
    while (exp->engine().Now() < kRunFor) {
      co_await exp->engine().SleepFor(250 * sim::kMillisecond);
      sim::Time now = exp->engine().Now();
      bool isolated = exp->cluster().nicfs(1)->isolated();
      if (now > kCrashAt + sim::kSecond && now < kRecoverAt && isolated) {
        g_went_isolated = true;
      }
      if (now > kRecoverAt + 2 * sim::kSecond && !isolated) {
        g_returned = true;
      }
    }
  }(&exp));

  workloads::Filebench::Options options = workloads::Filebench::VarmailOptions(1000);
  workloads::Filebench bench(fs, options);
  std::vector<sim::Task<>> tasks;
  tasks.push_back([](workloads::Filebench* bench) -> sim::Task<> {
    co_await bench->Preallocate();
    co_await bench->Run(kRunFor);
  }(&bench));
  exp.RunAll(std::move(tasks));

  g_kops_series.clear();
  // Skip the preallocation phase: report per-second kops once Run() started.
  for (size_t i = 0; i < bench.ops_series().bucket_count(); ++i) {
    g_kops_series.push_back(bench.ops_series().RateAt(i) / 1000.0);
  }
  double sum = 0;
  for (double k : g_kops_series) {
    sum += k;
  }
  exp.SetLabel("LineFS/replica_host_crash");
  exp.AddScalar("throughput_kops_per_sec",
                g_kops_series.empty() ? 0 : sum / static_cast<double>(g_kops_series.size()));
  exp.AddScalar("went_isolated", g_went_isolated ? 1 : 0);
  exp.AddScalar("resumed_host_mode", g_returned ? 1 : 0);
}

void BM_Fig10(benchmark::State& state) {
  for (auto _ : state) {
    Run();
  }
  state.counters["went_isolated"] = g_went_isolated ? 1 : 0;
  state.counters["resumed_host_mode"] = g_returned ? 1 : 0;
}

void PrintTable() {
  std::printf("\n=== Figure 10: Varmail throughput timeline across a replica host crash ===\n");
  std::printf("Replica-1 host crashes at t=8s, recovers at t=16s.\n");
  std::printf("NICFS switched to isolated mode during the crash: %s\n",
              g_went_isolated ? "YES" : "NO");
  std::printf("NICFS resumed host-based publication after recovery: %s\n",
              g_returned ? "YES" : "NO");
  std::printf("\n%6s %12s\n", "t(s)", "kops/s");
  for (size_t i = 0; i < g_kops_series.size() && i < 25; ++i) {
    const char* marker = "";
    if (i == 8) {
      marker = "  <- host crash";
    } else if (i == 16) {
      marker = "  <- host recovered";
    }
    std::printf("%6zu %12.1f%s\n", i, g_kops_series[i], marker);
  }
}

}  // namespace
}  // namespace linefs::bench

BENCHMARK(linefs::bench::BM_Fig10)->Iterations(1)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  linefs::bench::PrintTable();
  return linefs::bench::WriteBenchReport("fig10_availability");
}
