// Shared benchmark harness: one simulated cluster per experiment, helpers to
// run client tasks to completion, paper-style table printing, and structured
// JSON reporting (every bench binary writes BENCH_<name>.json on exit).

#ifndef BENCH_HARNESS_H_
#define BENCH_HARNESS_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/cluster.h"
#include "src/core/clustermgr.h"
#include "src/core/libfs.h"
#include "src/core/nicfs.h"
#include "src/core/sharedfs.h"
#include "src/obs/critical_path.h"
#include "src/obs/report.h"
#include "src/obs/selfprof.h"
#include "src/workloads/streamcluster.h"

namespace linefs::bench {

// Process-wide accumulator for the structured bench report. Every Experiment
// appends one run (label, scalars, metric snapshot) on destruction; the
// bench's main() calls WriteBenchReport("<name>") to emit BENCH_<name>.json.
class BenchReport {
 public:
  static BenchReport& Get() {
    static BenchReport report;
    return report;
  }

  void AddRun(obs::BenchRun run) { data_.runs.push_back(std::move(run)); }

  // Process-wide wall-clock self-profile: each Experiment merges its engine's
  // profile here on destruction (only when $LINEFS_SELFPROF is set).
  obs::SelfProfiler& selfprof() { return selfprof_; }

  // Writes BENCH_<name>.json into $LINEFS_BENCH_DIR (default "."). Returns a
  // process exit code so main() can `return WriteBenchReport(...)`.
  int Write(const std::string& name) {
    data_.name = name;
    data_.git_sha = GitSha();
    data_.wall_runtime_sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
    const char* dir = std::getenv("LINEFS_BENCH_DIR");
    Status st = obs::WriteBenchJson(data_, dir != nullptr ? dir : ".");
    if (!st.ok()) {
      std::fprintf(stderr, "bench: failed to write BENCH_%s.json: %s\n", name.c_str(),
                   st.message().c_str());
      return 1;
    }
    // Self-profile capture: folded stacks to $LINEFS_SELFPROF ("-" = stderr)
    // plus a top-components summary on stderr.
    if (const char* path = std::getenv("LINEFS_SELFPROF")) {
      if (!selfprof_.WriteFolded(path)) {
        std::fprintf(stderr, "bench: cannot write self-profile to %s\n", path);
        return 1;
      }
      std::fputs(selfprof_.Summary().c_str(), stderr);
    }
    return 0;
  }

 private:
  // Provenance: $LINEFS_GIT_SHA (CI stamps ${{ github.sha }}), then the local
  // git checkout, else "unknown". Never fails the bench.
  static std::string GitSha() {
    if (const char* sha = std::getenv("LINEFS_GIT_SHA")) {
      return sha;
    }
    std::string out;
    if (std::FILE* p = ::popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
      char buf[128];
      while (std::fgets(buf, sizeof(buf), p) != nullptr) {
        out += buf;
      }
      ::pclose(p);
    }
    while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
      out.pop_back();
    }
    return out.empty() ? "unknown" : out;
  }

  obs::BenchReportData data_;
  obs::SelfProfiler selfprof_;  // Accumulator mode: no engine attached.
  std::chrono::steady_clock::time_point start_ = std::chrono::steady_clock::now();
};

// Benchmark-scale configuration: payload bytes elided (simulated time is
// unaffected), capacities scaled (see DESIGN.md).
inline core::DfsConfig BenchConfig(core::DfsMode mode, bool materialize = false) {
  core::DfsConfig config;
  config.mode = mode;
  config.num_nodes = 3;
  config.pm_size = 6ULL << 30;
  config.log_size = 64ULL << 20;
  config.inode_count = 1 << 20;
  config.chunk_size = 4ULL << 20;
  config.materialize_data = materialize;
  // Telemetry window override (microseconds; 0 disables the timeline).
  if (const char* window = std::getenv("LINEFS_TIMELINE_WINDOW_US")) {
    config.timeline_window = static_cast<sim::Time>(std::atoll(window)) * sim::kMicrosecond;
  }
  return config;
}

class Experiment {
 public:
  explicit Experiment(const core::DfsConfig& config) {
    // Wall-clock self-profiling of the DES loop, merged process-wide at exit.
    if (std::getenv("LINEFS_SELFPROF") != nullptr) {
      selfprof_ = std::make_unique<obs::SelfProfiler>(&engine_);
    }
    cluster_ = std::make_unique<core::Cluster>(&engine_, config);
    Status st = cluster_->Start();
    if (!st.ok()) {
      std::fprintf(stderr, "bench: invalid config: %s\n", st.message().c_str());
      std::abort();
    }
  }
  ~Experiment() {
    cluster_->Shutdown();
    engine_.Run();
    // Engine health counters: a nonzero clamp count means some cost model
    // scheduled into the past (see Engine::ScheduleAt).
    obs::MetricsRegistry& registry = cluster_->metrics();
    registry.GetCounter("sim.events_processed")->Add(engine_.events_processed());
    registry.GetCounter("sim.schedule.calls")->Add(engine_.schedule_calls());
    registry.GetCounter("sim.schedule.clamped")->Add(engine_.schedule_clamps());
    // Engine-speed trajectory (informational, tracked across PRs): how many
    // DES events the engine retires per wall-clock second, and how much wall
    // time one simulated second costs for this run's workload.
    double wall_sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start_).count();
    double virtual_sec = sim::ToMicros(engine_.Now()) / 1e6;
    if (wall_sec > 0) {
      AddScalar("sim.events_per_wall_sec", engine_.events_processed() / wall_sec);
    }
    if (virtual_sec > 0) {
      AddScalar("sim.wall_sec_per_virtual_sec", wall_sec / virtual_sec);
    }
    run_.metrics = registry.TakeSnapshot();
    run_.virtual_time_us = sim::ToMicros(engine_.Now());
    run_.config = ConfigJson(cluster_->config());
    // Per-stage critical-path attribution of every traced operation.
    run_.critical_path = obs::CriticalPathAnalyzer(&cluster_->trace()).ReportJson();
    // Optional structured trace capture: export the last experiment's pipeline
    // spans as Chrome trace_event JSON (chrome://tracing, Perfetto), with the
    // timeline series as counter tracks.
    if (const char* path = std::getenv("LINEFS_TRACE_JSON")) {
      if (!cluster_->trace().WriteChromeJson(path, &run_.metrics.timeline)) {
        std::fprintf(stderr, "bench: cannot write trace to %s\n", path);
      }
    }
    BenchReport::Get().AddRun(std::move(run_));
    if (selfprof_ != nullptr) {
      selfprof_->Detach();
      BenchReport::Get().selfprof().MergeFrom(*selfprof_);
    }
  }

  // Labels this run in the JSON report (e.g. "LineFS/busy/4clients").
  void SetLabel(std::string label) { run_.label = std::move(label); }
  // Records a bench-specific scalar (throughput, latency, ...) for this run.
  void AddScalar(const std::string& name, double value) {
    run_.scalars.emplace_back(name, value);
  }
  // Attaches a bench-specific structured payload to this run's JSON.
  void SetExtra(obs::JsonValue extra) { run_.extra = std::move(extra); }

  // The config knobs that shape performance, stamped into every run.
  static obs::JsonValue ConfigJson(const core::DfsConfig& c) {
    obs::JsonValue v = obs::JsonValue::Object();
    v.Set("mode", core::DfsModeName(c.mode));
    v.Set("num_nodes", c.num_nodes);
    v.Set("chunk_size", c.chunk_size);
    v.Set("materialize_data", c.materialize_data);
    v.Set("compression", c.compression);
    v.Set("coalescing", c.coalescing);
    v.Set("publish_method", core::PublishMethodName(c.publish_method));
    v.Set("replica_publish", c.replica_publish);
    v.Set("max_stage_workers", c.max_stage_workers);
    v.Set("replication_protocol", c.repl.protocol);
    v.Set("quorum_size", c.repl.quorum_size);
    v.Set("fetch_depth", c.repl.fetch_depth);
    v.Set("transfer_window", c.repl.transfer_window);
    v.Set("pipeline_stages", c.pipeline_stages);
    v.Set("read_path", c.read_path);
    v.Set("read_nic_threshold", c.read_nic_threshold);
    v.Set("read_nic_load_max", c.read_nic_load_max);
    v.Set("doorbell_batch", c.doorbell_batch);
    v.Set("num_shards", c.num_shards);
    v.Set("shard_placement", c.shard_placement);
    v.Set("placer_pooling", c.placer_pooling);
    v.Set("placer_nic_saturation", c.placer_nic_saturation);
    return v;
  }

  core::Cluster& cluster() { return *cluster_; }
  sim::Engine& engine() { return engine_; }

  // Spawns all tasks and steps the engine until each completes.
  void RunAll(std::vector<sim::Task<>> tasks) {
    int remaining = static_cast<int>(tasks.size());
    for (sim::Task<>& task : tasks) {
      engine_.Spawn(
          [](sim::Task<> t, int* remaining) -> sim::Task<> {
            co_await std::move(t);
            --*remaining;
          }(std::move(task), &remaining),
          "client");
    }
    sim::Time deadline = engine_.Now() + 7200 * sim::kSecond;
    while (remaining > 0 && engine_.Now() < deadline && engine_.RunOne()) {
    }
    if (remaining > 0) {
      std::fprintf(stderr, "bench: %d tasks did not complete (deadlock?)\n", remaining);
      std::abort();
    }
  }

  void Drain(sim::Time t) { engine_.RunUntil(engine_.Now() + t); }

  // Runs streamcluster co-runners on the given nodes in the background. The
  // jobs are owned by the Experiment (they must outlive their coroutines);
  // the returned pointers let callers read execution times.
  std::vector<workloads::Streamcluster*> StartStreamcluster(
      const std::vector<int>& nodes, const workloads::Streamcluster::Options& options) {
    std::vector<workloads::Streamcluster*> started;
    for (int n : nodes) {
      co_runners_.push_back(
          std::make_unique<workloads::Streamcluster>(&cluster_->hw_node(n), options));
      engine_.Spawn(co_runners_.back()->Run(), "streamcluster");
      started.push_back(co_runners_.back().get());
    }
    return started;
  }

 private:
  sim::Engine engine_;
  std::chrono::steady_clock::time_point wall_start_ = std::chrono::steady_clock::now();
  std::unique_ptr<obs::SelfProfiler> selfprof_;  // Must outlive engine_ events; see dtor.
  std::unique_ptr<core::Cluster> cluster_;
  std::vector<std::unique_ptr<workloads::Streamcluster>> co_runners_;
  obs::BenchRun run_;  // Filled during the run, flushed to BenchReport on destruction.
};

// Convenience for bench main(): flush the report and return an exit code.
inline int WriteBenchReport(const std::string& name) { return BenchReport::Get().Write(name); }

// Streamcluster options matching the §5 co-runner: 48 threads, all cores,
// solo runtime scaled to ~8 simulated seconds (the paper's is ~26s; the
// DFS workloads here are scaled down by a similar factor).
inline workloads::Streamcluster::Options CoRunnerOptions(int threads = 48) {
  workloads::Streamcluster::Options o;
  o.threads = threads;
  o.iterations = 80;
  o.work_per_iteration = 100 * sim::kMillisecond;
  o.bytes_per_iteration = 80ULL << 20;
  return o;
}

inline const char* Gbps(double bytes_per_sec, char* buf, size_t n) {
  std::snprintf(buf, n, "%.2f", bytes_per_sec / 1e9);
  return buf;
}

}  // namespace linefs::bench

#endif  // BENCH_HARNESS_H_
