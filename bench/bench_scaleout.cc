// Scale-out sweep for the sharded namespace plane (DESIGN.md §13).
//
// Two experiments, both driving the open-loop load::Generator (Poisson
// arrivals, Zipfian popularity, multi-tenant namespace-heavy mix) against a
// LineFS cluster with the shard plane enabled:
//
//   1. Shard sweep: offered load held well past single-arbiter capacity,
//      num_shards in {1, 2, 4, 8}. With one shard every lease grant and
//      revocation in the cluster serializes through node 0's arbiter; adding
//      shards partitions the namespace (and its contention domains) across
//      arbiter nodes, so delivered metadata throughput should climb >= 1.5x
//      from 1 -> 4 shards and flatten once shards >= nodes.
//   2. Knee sweep: shard count fixed, offered arrival rate swept. Open-loop
//      arrivals do not self-throttle, so past the capacity knee queues fill
//      and p95 latency (arrival -> completion, queueing included) turns the
//      classic hockey stick while delivered throughput saturates.
//
// All labels carry the "scaleout_" prefix: scripts/bench_compare.py treats
// them as informational (no ratio gate) while still tracking the numbers.
//
// LINEFS_SCALEOUT_SMOKE=1 shrinks both sweeps for the CI bench-gate row.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/load/generator.h"

namespace linefs::bench {
namespace {

bool Smoke() {
  const char* v = std::getenv("LINEFS_SCALEOUT_SMOKE");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

std::vector<int> ShardSweep() { return Smoke() ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8}; }
std::vector<double> KneeRates() {
  return Smoke() ? std::vector<double>{100000, 300000}
                 : std::vector<double>{50000, 100000, 200000, 300000, 400000};
}

constexpr int kNodes = 4;
constexpr int kClientsPerNode = 2;
constexpr int kKneeShards = 4;

core::DfsConfig ScaleConfig(int num_shards) {
  core::DfsConfig config = BenchConfig(core::DfsMode::kLineFS);
  config.num_nodes = kNodes;
  config.num_shards = num_shards;
  config.shard_placement = "hash";
  config.inode_count = 1 << 20;
  config.log_size = 16ULL << 20;
  // Short leases keep the grant plane hot: clients must refresh leases every
  // millisecond, so the sweep measures serial-arbiter-root capacity rather
  // than the client-side lease-cache hit rate.
  config.lease_duration = 1 * sim::kMillisecond;
  return config;
}

load::Options LoadOptions(double arrival_rate) {
  load::Options opts;
  opts.sessions = Smoke() ? 20000 : 200000;
  opts.arrival_rate = arrival_rate;
  opts.workers_per_client = 4;
  opts.max_backlog = 256;
  opts.duration = Smoke() ? 400 * sim::kMillisecond : 2 * sim::kSecond;
  opts.seed = 42;
  // mdtest-style private subtrees: the sweep measures the metadata plane's
  // capacity, not per-inode sharing contention (which no shard count fixes).
  opts.private_dirs = true;
  // Namespace-heavy multi-tenant mix: mostly metadata mutations that exercise
  // lease arbitration on shared parent directories, a trickle of small
  // writes. Tenants differ in popularity skew and weight.
  load::OpMix mix;
  mix.create = 0.30;
  mix.stat = 0.35;
  mix.rename = 0.10;
  mix.mkdir = 0.03;
  mix.unlink = 0.17;
  mix.write = 0.05;
  mix.fsync_prob = 0.1;
  uint64_t files = Smoke() ? 64 : 256;  // Per client under private_dirs.
  for (int t = 0; t < 4; ++t) {
    load::TenantSpec spec;
    spec.name = "t" + std::to_string(t);
    spec.weight = t == 0 ? 2.0 : 1.0;  // One hot tenant, three warm.
    spec.files = files;
    spec.dirs = 32;
    spec.zipf_exponent = t == 0 ? 1.1 : 0.9;
    spec.write_bytes = 4096;
    spec.mix = mix;
    opts.tenants.push_back(spec);
  }
  return opts;
}

struct Row {
  double offered_rate = 0;
  double delivered_rate = 0;
  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  uint64_t errors = 0;
  uint64_t shed = 0;
};

std::map<int, Row> g_shard_rows;          // num_shards -> row.
std::map<double, Row> g_knee_rows;        // arrival rate -> row.

Row RunPoint(const std::string& label, int num_shards, double arrival_rate) {
  Experiment exp(ScaleConfig(num_shards));
  std::vector<core::LibFs*> clients;
  for (int n = 0; n < kNodes; ++n) {
    for (int c = 0; c < kClientsPerNode; ++c) {
      clients.push_back(exp.cluster().CreateClient(n));
    }
  }
  load::Generator gen(&exp.engine(), clients, LoadOptions(arrival_rate));
  load::Report report;
  bool setup_ok = false;
  std::vector<sim::Task<>> tasks;
  tasks.push_back([](load::Generator* gen, sim::Engine* engine, load::Report* out,
                     bool* setup_ok) -> sim::Task<> {
    Status st = co_await gen->Setup();
    *setup_ok = st.ok();
    if (!st.ok()) {
      std::fprintf(stderr, "bench_scaleout: setup failed: %s\n", st.ToString().c_str());
      co_return;
    }
    // Let replica publication converge so every node resolves the population.
    co_await engine->SleepFor(300 * sim::kMillisecond);
    *out = co_await gen->Run();
  }(&gen, &exp.engine(), &report, &setup_ok));
  exp.RunAll(std::move(tasks));
  if (!setup_ok) {
    std::abort();
  }

  Row row;
  row.offered_rate = report.offered_rate;
  row.delivered_rate = report.delivered_rate;
  row.p50_us = static_cast<double>(report.latency.p50) / sim::kMicrosecond;
  row.p95_us = static_cast<double>(report.latency.p95) / sim::kMicrosecond;
  row.p99_us = static_cast<double>(report.latency.p99) / sim::kMicrosecond;
  row.p999_us = static_cast<double>(report.latency.p999) / sim::kMicrosecond;
  row.errors = report.errors;
  row.shed = report.shed;

  exp.SetLabel(label);
  exp.AddScalar("offered_ops_per_sec", row.offered_rate);
  exp.AddScalar("delivered_ops_per_sec", row.delivered_rate);
  exp.AddScalar("p50_latency_us", row.p50_us);
  exp.AddScalar("p95_latency_us", row.p95_us);
  exp.AddScalar("p99_latency_us", row.p99_us);
  exp.AddScalar("p999_latency_us", row.p999_us);
  exp.AddScalar("errors", static_cast<double>(row.errors));
  exp.AddScalar("shed", static_cast<double>(row.shed));
  exp.AddScalar("sessions_touched", static_cast<double>(report.sessions_touched));
  return row;
}

// Offered rate for the shard sweep: far enough past one arbiter's capacity
// that delivered throughput measures the plane, not the arrival process.
// LINEFS_SCALEOUT_RATE overrides for capacity probing.
double SaturatingRate() {
  if (const char* v = std::getenv("LINEFS_SCALEOUT_RATE")) {
    double rate = std::atof(v);
    if (rate > 0) {
      return rate;
    }
  }
  // A single serial arbiter root delivers ~90k grants-bound ops/s in this
  // configuration; 2-3x past that keeps the 1-shard point firmly overloaded
  // while 4+ shards still absorb the offered stream.
  return Smoke() ? 200000.0 : 250000.0;
}

void BM_ShardSweep(benchmark::State& state) {
  int num_shards = static_cast<int>(state.range(0));
  Row row;
  for (auto _ : state) {
    row = RunPoint("scaleout_shards/" + std::to_string(num_shards), num_shards,
                   SaturatingRate());
  }
  g_shard_rows[num_shards] = row;
  state.counters["delivered_ops_s"] = row.delivered_rate;
  state.counters["p95_us"] = row.p95_us;
  state.SetLabel("shards=" + std::to_string(num_shards));
}

void BM_Knee(benchmark::State& state) {
  double rate = static_cast<double>(state.range(0));
  Row row;
  for (auto _ : state) {
    row = RunPoint("scaleout_knee/rate" + std::to_string(state.range(0)), kKneeShards, rate);
  }
  g_knee_rows[rate] = row;
  state.counters["delivered_ops_s"] = row.delivered_rate;
  state.counters["p95_us"] = row.p95_us;
  state.SetLabel("rate=" + std::to_string(state.range(0)));
}

void PrintTables() {
  std::printf("\n=== Scale-out: delivered metadata throughput vs shard count ===\n");
  std::printf("(open loop, %.0f ops/s offered, %d nodes, %d clients)\n", SaturatingRate(),
              kNodes, kNodes * kClientsPerNode);
  std::printf("%8s %14s %14s %10s %10s %10s %8s %8s\n", "shards", "offered/s", "delivered/s",
              "p50(us)", "p95(us)", "p99(us)", "errors", "shed");
  for (const auto& [shards, row] : g_shard_rows) {
    std::printf("%8d %14.0f %14.0f %10.0f %10.0f %10.0f %8llu %8llu\n", shards,
                row.offered_rate, row.delivered_rate, row.p50_us, row.p95_us, row.p99_us,
                static_cast<unsigned long long>(row.errors),
                static_cast<unsigned long long>(row.shed));
  }
  if (g_shard_rows.count(1) != 0 && g_shard_rows.count(4) != 0 &&
      g_shard_rows[1].delivered_rate > 0) {
    std::printf("speedup 1 -> 4 shards: %.2fx\n",
                g_shard_rows[4].delivered_rate / g_shard_rows[1].delivered_rate);
  }

  std::printf("\n=== Scale-out: latency knee (shards=%d, offered rate swept) ===\n",
              kKneeShards);
  std::printf("%12s %14s %10s %10s %8s\n", "offered/s", "delivered/s", "p95(us)", "p99(us)",
              "shed");
  for (const auto& [rate, row] : g_knee_rows) {
    std::printf("%12.0f %14.0f %10.0f %10.0f %8llu\n", rate, row.delivered_rate, row.p95_us,
                row.p99_us, static_cast<unsigned long long>(row.shed));
  }
}

}  // namespace
}  // namespace linefs::bench

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  for (int shards : linefs::bench::ShardSweep()) {
    ::benchmark::RegisterBenchmark("BM_ShardSweep", linefs::bench::BM_ShardSweep)
        ->Arg(shards)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  for (double rate : linefs::bench::KneeRates()) {
    ::benchmark::RegisterBenchmark("BM_Knee", linefs::bench::BM_Knee)
        ->Arg(static_cast<int64_t>(rate))
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  ::benchmark::RunSpecifiedBenchmarks();
  linefs::bench::PrintTables();
  return linefs::bench::WriteBenchReport("scaleout");
}
