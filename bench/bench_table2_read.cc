// Table 2: read throughput (MB/s) of Assise and LineFS, sequential and
// random, single client reading a pre-written file locally with 16KB IOs.
//
// Paper shape: reads never touch the SmartNIC (the whole read path runs on
// host CPUs), so LineFS ~= Assise for both patterns (~3 GB/s class).

#include <benchmark/benchmark.h>

#include <map>

#include "bench/harness.h"
#include "src/workloads/microbench.h"

namespace linefs::bench {
namespace {

constexpr uint64_t kFileBytes = 256ULL << 20;  // Scaled from 12GB.
constexpr uint64_t kIoSize = 16 << 10;

std::map<std::pair<int, int>, double> g_results;  // (mode, random) -> B/s

double RunConfig(core::DfsMode mode, bool random) {
  Experiment exp(BenchConfig(mode));
  core::LibFs* fs = exp.cluster().CreateClient(0);
  // Write + publish the file first (setup, not measured).
  std::vector<sim::Task<>> setup;
  setup.push_back([](core::LibFs* fs) -> sim::Task<> {
    workloads::BenchResult w = co_await workloads::SeqWrite(fs, "/read.dat", kFileBytes, 1 << 20);
    (void)w;
  }(fs));
  Experiment* e = &exp;
  e->RunAll(std::move(setup));
  e->Drain(10 * sim::kSecond);  // Publication completes; reads hit public PM.

  double tput = 0;
  std::vector<sim::Task<>> tasks;
  tasks.push_back([](core::LibFs* fs, bool random, double* out) -> sim::Task<> {
    workloads::BenchResult r =
        co_await workloads::ReadBench(fs, "/read.dat", kFileBytes, kIoSize, random, 7);
    *out = r.throughput();
  }(fs, random, &tput));
  e->RunAll(std::move(tasks));
  exp.SetLabel(std::string(core::DfsModeName(mode)) + (random ? "/rand" : "/seq"));
  exp.AddScalar("throughput_bytes_per_sec", tput);
  return tput;
}

void BM_Table2(benchmark::State& state) {
  core::DfsMode mode = state.range(0) == 0 ? core::DfsMode::kAssise : core::DfsMode::kLineFS;
  bool random = state.range(1) != 0;
  double tput = 0;
  for (auto _ : state) {
    tput = RunConfig(mode, random);
  }
  g_results[{static_cast<int>(state.range(0)), random}] = tput;
  state.counters["MB/s"] = tput / 1e6;
  state.SetLabel(std::string(core::DfsModeName(mode)) + (random ? "/rand" : "/seq"));
}

void PrintTable() {
  std::printf("\n=== Table 2: read throughput (MB/s) ===\n");
  std::printf("%-18s %12s %12s\n", "", "Assise", "LineFS");
  std::printf("%-18s %12.0f %12.0f\n", "Sequential read", g_results[{0, 0}] / 1e6,
              g_results[{1, 0}] / 1e6);
  std::printf("%-18s %12.0f %12.0f\n", "Random read", g_results[{0, 1}] / 1e6,
              g_results[{1, 1}] / 1e6);
}

}  // namespace
}  // namespace linefs::bench

BENCHMARK(linefs::bench::BM_Table2)
    ->ArgsProduct({{0, 1}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  linefs::bench::PrintTable();
  return linefs::bench::WriteBenchReport("table2_read");
}
