// Table 2: read throughput (MB/s) of Assise and LineFS, sequential and
// random, single client reading a pre-written file locally with 16KB IOs.
//
// Paper shape: reads never touch the SmartNIC (the whole read path runs on
// host CPUs), so LineFS ~= Assise for both patterns (~3 GB/s class).
//
// The read_path sweep (ISSUE 10) adds LineFS rows for the three route
// policies at the same 16KB IOs: host (the paper baseline above), nic_rpc
// (every read forwarded to the NIC), and adaptive (per-read choice by size +
// NIC-load EWMA). At 16KB the fixed RPC overhead dominates, so adaptive must
// track host — the acceptance bar is adaptive >= max(host, nic_rpc) on both
// patterns. Sweep rows are labelled "readpath/..." and are informational in
// bench_compare except through the gated LineFS baseline rows.

#include <benchmark/benchmark.h>

#include <map>

#include "bench/harness.h"
#include "src/workloads/microbench.h"

namespace linefs::bench {
namespace {

constexpr uint64_t kFileBytes = 256ULL << 20;  // Scaled from 12GB.
constexpr uint64_t kIoSize = 16 << 10;

std::map<std::pair<int, int>, double> g_results;  // (mode, random) -> B/s
std::map<std::pair<std::string, int>, double> g_readpath;  // (policy, random) -> B/s

double RunConfig(core::DfsMode mode, bool random, const std::string& read_path = "host") {
  core::DfsConfig config = BenchConfig(mode);
  config.read_path = read_path;
  Experiment exp(config);
  core::LibFs* fs = exp.cluster().CreateClient(0);
  // Write + publish the file first (setup, not measured).
  std::vector<sim::Task<>> setup;
  setup.push_back([](core::LibFs* fs) -> sim::Task<> {
    workloads::BenchResult w = co_await workloads::SeqWrite(fs, "/read.dat", kFileBytes, 1 << 20);
    (void)w;
  }(fs));
  Experiment* e = &exp;
  e->RunAll(std::move(setup));
  e->Drain(10 * sim::kSecond);  // Publication completes; reads hit public PM.

  double tput = 0;
  std::vector<sim::Task<>> tasks;
  tasks.push_back([](core::LibFs* fs, bool random, double* out) -> sim::Task<> {
    workloads::BenchResult r =
        co_await workloads::ReadBench(fs, "/read.dat", kFileBytes, kIoSize, random, 7);
    *out = r.throughput();
  }(fs, random, &tput));
  e->RunAll(std::move(tasks));
  std::string label = std::string(core::DfsModeName(mode)) + (random ? "/rand" : "/seq");
  if (read_path != "host") {
    label = "readpath/" + read_path + (random ? "/rand" : "/seq");
  }
  exp.SetLabel(label);
  exp.AddScalar("throughput_bytes_per_sec", tput);
  return tput;
}

void BM_Table2(benchmark::State& state) {
  core::DfsMode mode = state.range(0) == 0 ? core::DfsMode::kAssise : core::DfsMode::kLineFS;
  bool random = state.range(1) != 0;
  double tput = 0;
  for (auto _ : state) {
    tput = RunConfig(mode, random);
  }
  g_results[{static_cast<int>(state.range(0)), random}] = tput;
  state.counters["MB/s"] = tput / 1e6;
  state.SetLabel(std::string(core::DfsModeName(mode)) + (random ? "/rand" : "/seq"));
}

// read_path policy sweep on LineFS: host / nic_rpc / adaptive x seq/random.
// The "host" rows reuse the gated LineFS baseline numbers above.
void BM_ReadPath(benchmark::State& state) {
  static const char* kPolicies[] = {"nic_rpc", "adaptive"};
  const std::string policy = kPolicies[state.range(0)];
  bool random = state.range(1) != 0;
  double tput = 0;
  for (auto _ : state) {
    tput = RunConfig(core::DfsMode::kLineFS, random, policy);
  }
  g_readpath[{policy, random}] = tput;
  state.counters["MB/s"] = tput / 1e6;
  state.SetLabel("readpath/" + policy + (random ? "/rand" : "/seq"));
}

void PrintTable() {
  std::printf("\n=== Table 2: read throughput (MB/s) ===\n");
  std::printf("%-18s %12s %12s\n", "", "Assise", "LineFS");
  std::printf("%-18s %12.0f %12.0f\n", "Sequential read", g_results[{0, 0}] / 1e6,
              g_results[{1, 0}] / 1e6);
  std::printf("%-18s %12.0f %12.0f\n", "Random read", g_results[{0, 1}] / 1e6,
              g_results[{1, 1}] / 1e6);
  std::printf("\n=== read_path sweep, LineFS 16KB IOs (MB/s) ===\n");
  std::printf("%-18s %12s %12s %12s\n", "", "host", "nic_rpc", "adaptive");
  for (int random = 0; random <= 1; ++random) {
    std::printf("%-18s %12.0f %12.0f %12.0f\n",
                random ? "Random read" : "Sequential read", g_results[{1, random}] / 1e6,
                g_readpath[{"nic_rpc", random}] / 1e6,
                g_readpath[{"adaptive", random}] / 1e6);
  }
}

}  // namespace
}  // namespace linefs::bench

BENCHMARK(linefs::bench::BM_Table2)
    ->ArgsProduct({{0, 1}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(linefs::bench::BM_ReadPath)
    ->ArgsProduct({{0, 1}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  linefs::bench::PrintTable();
  return linefs::bench::WriteBenchReport("table2_read");
}
