// Figure 7: impact of the kernel worker's publication copy method on
// streamcluster execution time and LineFS throughput, co-running at equal
// priority with 4 DFS clients.
//
// Paper shape: streamcluster degrades monotonically with heavier host-side
// publication (No copy ~= solo; DMA interrupt+batch ~ -23%; CPU memcpy
// ~ -61%), while LineFS throughput is best with DMA interrupt+batch among
// the realistic methods (+40% vs CPU memcpy).

#include <benchmark/benchmark.h>

#include <map>

#include "bench/harness.h"
#include "src/workloads/microbench.h"

namespace linefs::bench {
namespace {

constexpr uint64_t kBytesPerClient = 128ULL << 20;

const core::PublishMethod kMethods[] = {
    core::PublishMethod::kCpuMemcpy,        core::PublishMethod::kDmaPolling,
    core::PublishMethod::kDmaPollingBatch,  core::PublishMethod::kDmaInterruptBatch,
    core::PublishMethod::kNoCopy,
};

struct Row {
  double sc_s = 0;
  double tput = 0;
};
std::map<int, Row> g_rows;

Row RunConfig(core::PublishMethod method) {
  core::DfsConfig config = BenchConfig(core::DfsMode::kLineFS);
  config.publish_method = method;
  config.host_fs_priority = sim::Priority::kNormal;  // Equal priority (§5.2.4).
  Experiment exp(config);
  std::vector<workloads::Streamcluster*> jobs =
      exp.StartStreamcluster({0, 1, 2}, CoRunnerOptions());
  std::vector<core::LibFs*> fss;
  for (int c = 0; c < 4; ++c) {
    fss.push_back(exp.cluster().CreateClient(0));
  }
  sim::Time start = exp.engine().Now();
  std::vector<sim::Task<>> tasks;
  for (int c = 0; c < 4; ++c) {
    tasks.push_back([](core::LibFs* fs, int c) -> sim::Task<> {
      workloads::BenchResult r = co_await workloads::SeqWrite(
          fs, "/f7_" + std::to_string(c), kBytesPerClient, 16 << 10);
      (void)r;
    }(fss[c], c));
  }
  exp.RunAll(std::move(tasks));
  sim::Time dfs_elapsed = exp.engine().Now() - start;
  exp.Drain(60 * sim::kSecond);
  Row row;
  row.tput = 4.0 * kBytesPerClient / sim::ToSeconds(dfs_elapsed);
  row.sc_s = sim::ToSeconds(jobs[0]->elapsed());  // Primary-node co-runner.
  exp.SetLabel(core::PublishMethodName(method));
  exp.AddScalar("throughput_bytes_per_sec", row.tput);
  exp.AddScalar("sc_primary_s", row.sc_s);
  return row;
}

void BM_Fig7(benchmark::State& state) {
  Row row;
  for (auto _ : state) {
    row = RunConfig(kMethods[state.range(0)]);
  }
  g_rows[static_cast<int>(state.range(0))] = row;
  state.counters["sc_s"] = row.sc_s;
  state.counters["MB/s"] = row.tput / 1e6;
  state.SetLabel(core::PublishMethodName(kMethods[state.range(0)]));
}

void PrintTable() {
  std::printf("\n=== Figure 7: copy method vs streamcluster time and LineFS throughput ===\n");
  std::printf("%-24s %16s %14s\n", "method", "streamcluster(s)", "LineFS MB/s");
  for (int m = 0; m < 5; ++m) {
    std::printf("%-24s %16.1f %14.0f\n", core::PublishMethodName(kMethods[m]), g_rows[m].sc_s,
                g_rows[m].tput / 1e6);
  }
}

}  // namespace
}  // namespace linefs::bench

BENCHMARK(linefs::bench::BM_Fig7)->DenseRange(0, 4)->Iterations(1)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  linefs::bench::PrintTable();
  return linefs::bench::WriteBenchReport("fig7_copy_methods");
}
