// Ablation bench for the design choices DESIGN.md calls out (not a paper
// figure): pipeline chunk size, coalescing on/off, dynamic stage scaling
// limits, and compression thread count.
//
//  - Chunk size trades PCIe/network amortisation against pipeline latency:
//    too small and per-chunk overheads dominate; too large and the pipeline
//    loses overlap (and fsync tail latency grows).
//  - Coalescing removes temporarily durable writes before publication
//    (write-amplification win, extra scan cost).
//  - Stage scaling lets validation keep up with the fetch stage on wimpy
//    cores.

#include <benchmark/benchmark.h>

#include <map>

#include "bench/harness.h"
#include "src/core/nicfs.h"
#include "src/workloads/microbench.h"

namespace linefs::bench {
namespace {

constexpr uint64_t kBytes = 192ULL << 20;

double RunThroughput(core::DfsConfig config, const std::string& label) {
  Experiment exp(config);
  core::LibFs* fs = exp.cluster().CreateClient(0);
  sim::Time start = exp.engine().Now();
  std::vector<sim::Task<>> tasks;
  tasks.push_back([](core::LibFs* fs) -> sim::Task<> {
    workloads::BenchResult r = co_await workloads::SeqWrite(fs, "/abl.dat", kBytes, 16 << 10);
    (void)r;
  }(fs));
  exp.RunAll(std::move(tasks));
  double tput = static_cast<double>(kBytes) / sim::ToSeconds(exp.engine().Now() - start);
  exp.SetLabel(label);
  exp.AddScalar("throughput_bytes_per_sec", tput);
  return tput;
}

std::map<int, double> g_chunk;
std::map<int, double> g_scaling;
std::map<int, std::pair<double, uint64_t>> g_coalesce;

void BM_ChunkSize(benchmark::State& state) {
  uint64_t chunk_kb = static_cast<uint64_t>(state.range(0));
  core::DfsConfig config = BenchConfig(core::DfsMode::kLineFS);
  config.chunk_size = chunk_kb << 10;
  double tput = 0;
  for (auto _ : state) {
    tput = RunThroughput(config, "chunk" + std::to_string(chunk_kb) + "KB");
  }
  g_chunk[static_cast<int>(state.range(0))] = tput;
  state.counters["GB/s"] = tput / 1e9;
}

void BM_StageScaling(benchmark::State& state) {
  int max_workers = static_cast<int>(state.range(0));
  core::DfsConfig config = BenchConfig(core::DfsMode::kLineFS);
  config.max_stage_workers = max_workers;
  double tput = 0;
  for (auto _ : state) {
    tput = RunThroughput(config, "max_workers" + std::to_string(max_workers));
  }
  g_scaling[max_workers] = tput;
  state.counters["GB/s"] = tput / 1e9;
}

void BM_Coalescing(benchmark::State& state) {
  bool coalesce = state.range(0) != 0;
  core::DfsConfig config = BenchConfig(core::DfsMode::kLineFS, /*materialize=*/true);
  config.coalescing = coalesce;
  double kops = 0;
  uint64_t pm_writes = 0;
  for (auto _ : state) {
    Experiment exp(config);
    core::LibFs* fs = exp.cluster().CreateClient(0);
    std::vector<sim::Task<>> tasks;
    // Temp-file churn: the coalescing-friendly pattern (create/write/delete).
    tasks.push_back([](core::LibFs* fs) -> sim::Task<> {
      for (int i = 0; i < 400; ++i) {
        std::string path = "/tmp" + std::to_string(i);
        Result<int> fd = co_await fs->Open(path, fslib::kOpenCreate | fslib::kOpenWrite);
        if (fd.ok()) {
          Result<uint64_t> w = co_await fs->PwriteGen(*fd, 64 << 10, 0, 1);
          (void)w;
          co_await fs->Close(*fd);
        }
        Status st = co_await fs->Unlink(path);
        (void)st;
      }
      Result<int> keeper = co_await fs->Open("/keep", fslib::kOpenCreate | fslib::kOpenWrite);
      if (keeper.ok()) {
        Status st = co_await fs->Fsync(*keeper);
        (void)st;
      }
    }(fs));
    sim::Time start = exp.engine().Now();
    exp.RunAll(std::move(tasks));
    exp.Drain(5 * sim::kSecond);
    kops = 800.0 / sim::ToSeconds(exp.engine().Now() - start) / 1000.0;
    // Write amplification proxy: bytes the publication path moved into PM.
    pm_writes = exp.cluster().dfs_node(0).fs().published_bytes();
    exp.SetLabel(coalesce ? "coalescing_on" : "coalescing_off");
    exp.AddScalar("throughput_kops_per_sec", kops);
    exp.AddScalar("published_bytes", static_cast<double>(pm_writes));
  }
  g_coalesce[coalesce ? 1 : 0] = {kops, pm_writes};
  state.counters["kops_s"] = kops;
  state.counters["published_MB"] = static_cast<double>(pm_writes) / 1e6;
}

void PrintTables() {
  std::printf("\n=== Ablation: pipeline chunk size (LineFS seq-write throughput) ===\n");
  std::printf("%-12s %10s\n", "chunk", "GB/s");
  for (auto& [kb, tput] : g_chunk) {
    std::printf("%6d KB   %10.2f\n", kb, tput / 1e9);
  }
  std::printf("\n=== Ablation: dynamic stage scaling (max workers per stage) ===\n");
  std::printf("%-12s %10s\n", "max workers", "GB/s");
  for (auto& [w, tput] : g_scaling) {
    std::printf("%-12d %10.2f\n", w, tput / 1e9);
  }
  std::printf("\n=== Ablation: publication coalescing (temp-file churn) ===\n");
  std::printf("%-12s %10s %16s\n", "coalescing", "kops/s", "published MB");
  for (auto& [on, v] : g_coalesce) {
    std::printf("%-12s %10.1f %16.1f\n", on ? "on" : "off", v.first, v.second / 1e6);
  }
}

}  // namespace
}  // namespace linefs::bench

BENCHMARK(linefs::bench::BM_ChunkSize)
    ->Arg(512)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(linefs::bench::BM_StageScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(linefs::bench::BM_Coalescing)->Arg(0)->Arg(1)->Iterations(1)->Unit(
    benchmark::kMillisecond);

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  linefs::bench::PrintTables();
  return linefs::bench::WriteBenchReport("ablation");
}
