// Table 1 (motivation): client CPU utilization and throughput for Assise
// (client-local DFS) vs a Ceph-like client-server DFS, at 25GbE and 100GbE,
// for 1/2/4/8 benchmark processes writing 4KB IOs.
//
// Paper shape: both DFSes burn client cycles, but Assise's client CPU grows
// with process count AND network speed (file-system management is
// client-local), while Ceph's stays ~2 cores; Ceph throughput caps at its
// server journal (~1.4-1.6 GB/s) while Assise scales to the network.

#include <benchmark/benchmark.h>

#include <map>

#include "bench/harness.h"
#include "src/baseline/cephlike.h"
#include "src/workloads/microbench.h"

namespace linefs::bench {
namespace {

constexpr uint64_t kBytesPerProc = 384ULL << 20;  // Scaled from 24 GB.
constexpr uint64_t kIoSize = 4096;

struct Cell {
  double tput = 0;
  double cores = 0;
};
// key: (is_ceph, fast_net, procs)
std::map<std::tuple<int, int, int>, Cell> g_cells;

Cell RunAssise(bool fast_net, int procs) {
  core::DfsConfig config = BenchConfig(core::DfsMode::kAssise);
  config.max_clients = 8;
  if (fast_net) {
    config.node_params.nic.net_goodput = 8.8e9;  // 100GbE goodput.
  }
  Experiment exp(config);
  std::vector<core::LibFs*> fss;
  for (int c = 0; c < procs; ++c) {
    fss.push_back(exp.cluster().CreateClient(0));
  }
  sim::Time start = exp.engine().Now();
  std::vector<sim::Task<>> tasks;
  for (int c = 0; c < procs; ++c) {
    tasks.push_back([](core::LibFs* fs, int c) -> sim::Task<> {
      workloads::BenchResult r = co_await workloads::SeqWrite(
          fs, "/t1_" + std::to_string(c), kBytesPerProc, kIoSize);
      (void)r;
    }(fss[c], c));
  }
  exp.RunAll(std::move(tasks));
  sim::Time elapsed = exp.engine().Now() - start;
  Cell cell;
  cell.tput = static_cast<double>(kBytesPerProc) * procs / sim::ToSeconds(elapsed);
  // Client (primary-node) CPU: LibFS+SharedFS+kworker busy time.
  sim::CpuPool& cpu = exp.cluster().hw_node(0).host_cpu();
  cell.cores = cpu.TotalBusySeconds() / sim::ToSeconds(elapsed);
  exp.SetLabel(std::string("Assise/") + (fast_net ? "100GbE/" : "25GbE/") +
               std::to_string(procs) + "procs");
  exp.AddScalar("throughput_bytes_per_sec", cell.tput);
  exp.AddScalar("client_cpu_cores", cell.cores);
  return cell;
}

Cell RunCeph(bool fast_net, int procs) {
  baseline::CephLike::Options options;
  options.client_procs = procs;
  options.bytes_per_proc = kBytesPerProc;
  options.io_size = kIoSize;
  options.net_goodput = fast_net ? 8.8e9 : 2.2e9;
  options.journal_bw = fast_net ? 1.62e9 : 1.45e9;
  baseline::CephLike::RunResult result = baseline::CephLike::Run(options);
  return Cell{result.throughput, result.client_cpu_cores};
}

void BM_Table1(benchmark::State& state) {
  bool is_ceph = state.range(0) != 0;
  bool fast_net = state.range(1) != 0;
  int procs = static_cast<int>(state.range(2));
  Cell cell;
  for (auto _ : state) {
    cell = is_ceph ? RunCeph(fast_net, procs) : RunAssise(fast_net, procs);
  }
  g_cells[{is_ceph, fast_net, procs}] = cell;
  state.counters["GB/s"] = cell.tput / 1e9;
  state.counters["cpu_pct"] = cell.cores * 100;
  state.SetLabel(std::string(is_ceph ? "Ceph" : "Assise") + (fast_net ? "/100GbE" : "/25GbE"));
}

void PrintTable() {
  std::printf("\n=== Table 1: throughput (GB/s) and client CPU utilization (100%% = 1 core) ===\n");
  std::printf("%-6s | %-29s | %-29s\n", "", "Throughput (GB/s)", "CPU utilization");
  std::printf("%-6s | %6s %6s  %6s %6s | %6s %6s  %6s %6s\n", "procs", "25-As", "25-Ceph",
              "100-As", "100-Ceph", "25-As", "25-Ceph", "100-As", "100-Ceph");
  for (int procs : {1, 2, 4, 8}) {
    std::printf("%-6d |", procs);
    for (int fast = 0; fast <= 1; ++fast) {
      std::printf(" %6.2f %6.2f ", g_cells[{0, fast, procs}].tput / 1e9,
                  g_cells[{1, fast, procs}].tput / 1e9);
    }
    std::printf("|");
    for (int fast = 0; fast <= 1; ++fast) {
      std::printf(" %5.0f%% %5.0f%% ", g_cells[{0, fast, procs}].cores * 100,
                  g_cells[{1, fast, procs}].cores * 100);
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace linefs::bench

BENCHMARK(linefs::bench::BM_Table1)
    ->ArgsProduct({{0, 1}, {0, 1}, {1, 2, 4, 8}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  linefs::bench::PrintTable();
  return linefs::bench::WriteBenchReport("table1_cpu_util");
}
