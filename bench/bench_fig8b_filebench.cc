// Figure 8b: Filebench Fileserver and Varmail throughput (kops/s) with busy
// replicas.
//
// Paper shape: Fileserver — LineFS ~79% higher than Assise (write-heavy, no
// fsync: everything pipelines in the background). Varmail — Assise ~21%
// higher than LineFS (fsync-heavy small files + per-open permission RPC
// across PCIe).

#include <benchmark/benchmark.h>

#include <map>

#include "bench/harness.h"
#include "src/workloads/filebench.h"

namespace linefs::bench {
namespace {

constexpr int kFiles = 2000;  // Scaled from 10K.
constexpr sim::Time kRunFor = 5 * sim::kSecond;

std::map<std::pair<int, int>, double> g_kops;  // (mode, profile) -> kops/s

double RunOne(core::DfsMode mode, workloads::FilebenchProfile profile) {
  core::DfsConfig config = BenchConfig(mode);
  config.host_fs_priority = sim::Priority::kHigh;
  Experiment exp(config);
  exp.StartStreamcluster({1, 2}, CoRunnerOptions());
  core::LibFs* fs = exp.cluster().CreateClient(0);
  double kops = 0;
  std::vector<sim::Task<>> tasks;
  tasks.push_back([](core::LibFs* fs, workloads::FilebenchProfile profile,
                     double* out) -> sim::Task<> {
    workloads::Filebench::Options options =
        profile == workloads::FilebenchProfile::kFileserver
            ? workloads::Filebench::FileserverOptions(kFiles)
            : workloads::Filebench::VarmailOptions(kFiles);
    workloads::Filebench bench(fs, options);
    co_await bench.Preallocate();
    co_await bench.Run(kRunFor);
    *out = bench.ops_per_second() / 1000.0;
  }(fs, profile, &kops));
  exp.RunAll(std::move(tasks));
  exp.SetLabel(std::string(core::DfsModeName(mode)) +
               (profile == workloads::FilebenchProfile::kFileserver ? "/fileserver"
                                                                    : "/varmail"));
  exp.AddScalar("throughput_kops_per_sec", kops);
  return kops;
}

void BM_Fig8b(benchmark::State& state) {
  core::DfsMode mode = state.range(0) == 0 ? core::DfsMode::kAssise : core::DfsMode::kLineFS;
  workloads::FilebenchProfile profile = state.range(1) == 0
                                            ? workloads::FilebenchProfile::kFileserver
                                            : workloads::FilebenchProfile::kVarmail;
  double kops = 0;
  for (auto _ : state) {
    kops = RunOne(mode, profile);
  }
  g_kops[{static_cast<int>(state.range(0)), static_cast<int>(state.range(1))}] = kops;
  state.counters["kops_s"] = kops;
  state.SetLabel(std::string(core::DfsModeName(mode)) +
                 (state.range(1) == 0 ? "/fileserver" : "/varmail"));
}

void PrintTable() {
  std::printf("\n=== Figure 8b: Filebench throughput (kops/s), busy replicas ===\n");
  std::printf("%-12s %10s %10s\n", "workload", "Assise", "LineFS");
  std::printf("%-12s %10.1f %10.1f\n", "Fileserver", g_kops[{0, 0}], g_kops[{1, 0}]);
  std::printf("%-12s %10.1f %10.1f\n", "Varmail", g_kops[{0, 1}], g_kops[{1, 1}]);
}

}  // namespace
}  // namespace linefs::bench

BENCHMARK(linefs::bench::BM_Fig8b)
    ->ArgsProduct({{0, 1}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  linefs::bench::PrintTable();
  return linefs::bench::WriteBenchReport("fig8b_filebench");
}
