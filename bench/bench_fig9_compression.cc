// Figure 9: Tencent Sort with replication-pipeline compression — network
// bandwidth consumption over time and sort runtime, for input sets with 40%,
// 60%, and 80% zero-fill, vs Assise (no compression).
//
// This experiment MATERIALISES data: the LZW codec really runs and its
// achieved ratio determines the wire bytes. iperf3-style background traffic
// contends for the primary's egress bandwidth, as in the paper.
//
// Paper shape: network savings ~29/49/72% for the 40/60/80% inputs; runtime
// comparable at low ratios and ~10% better than Assise at 80%.

#include <benchmark/benchmark.h>

#include <map>

#include "bench/harness.h"
#include "src/core/nicfs.h"
#include "src/workloads/sortbench.h"

namespace linefs::bench {
namespace {

constexpr uint64_t kRecords = 1000000;  // 100MB of 100B records (scaled from 8GB).

struct Row {
  double runtime_s = 0;
  double wire_gb = 0;
  double saved_pct = 0;
  std::vector<double> bw_series;  // Primary egress GB/s per 500ms bucket.
};
std::map<int, Row> g_rows;  // -1 = Assise; 40/60/80 = LineFS-x%.

Row RunOne(bool compression, double zero_fraction) {
  core::DfsConfig config =
      BenchConfig(compression ? core::DfsMode::kLineFS : core::DfsMode::kAssise,
                  /*materialize=*/true);
  config.compression = compression;
  Experiment exp(config);
  exp.cluster().fabric().tx(0).EnableTimeseries(500 * sim::kMillisecond);
  std::vector<core::LibFs*> clients;
  for (int c = 0; c < 4; ++c) {
    clients.push_back(exp.cluster().CreateClient(0));
  }
  // Background iperf3 contender on the primary's egress.
  exp.engine().Spawn(workloads::IperfTraffic(&exp.cluster().fabric(), &exp.engine(), 0, 2,
                                             exp.engine().Now() + 60 * sim::kSecond));
  workloads::SortOptions options;
  options.records = kRecords;
  options.zero_fraction = zero_fraction;
  Row row;
  std::vector<sim::Task<>> tasks;
  tasks.push_back([](std::vector<core::LibFs*> clients, workloads::SortOptions options,
                     Row* row) -> sim::Task<> {
    workloads::SortResult result = co_await workloads::RunTencentSort(clients, options);
    row->runtime_s = sim::ToSeconds(result.elapsed);
    if (!result.verified) {
      std::fprintf(stderr, "fig9: sort output NOT sorted!\n");
    }
  }(clients, options, &row));
  exp.RunAll(std::move(tasks));
  exp.Drain(5 * sim::kSecond);

  if (compression) {
    core::NicFs::StatsSnapshot stats = exp.cluster().nicfs(0)->stats();
    row.wire_gb = static_cast<double>(stats.wire_bytes) / 1e9;
    row.saved_pct = stats.raw_repl_bytes > 0
                        ? 100.0 * (1.0 - static_cast<double>(stats.wire_bytes) /
                                             static_cast<double>(stats.raw_repl_bytes))
                        : 0;
  } else {
    row.wire_gb = static_cast<double>(exp.cluster().sharedfs(0)->stats().bytes_replicated) / 1e9;
    row.saved_pct = 0;
  }
  const sim::TimeSeries* ts = exp.cluster().fabric().tx(0).timeseries();
  for (size_t i = 0; i < ts->bucket_count(); ++i) {
    row.bw_series.push_back(ts->RateAt(i) / 1e9);
  }
  exp.SetLabel(compression
                   ? "LineFS/zero" + std::to_string(static_cast<int>(zero_fraction * 100)) + "%"
                   : "Assise/no_compression");
  exp.AddScalar("runtime_s", row.runtime_s);
  exp.AddScalar("wire_gb", row.wire_gb);
  exp.AddScalar("net_saved_pct", row.saved_pct);
  return row;
}

void BM_Fig9(benchmark::State& state) {
  int knob = static_cast<int>(state.range(0));  // 0 = Assise, else zero%.
  Row row;
  for (auto _ : state) {
    row = RunOne(knob != 0, knob / 100.0);
  }
  g_rows[knob == 0 ? -1 : knob] = row;
  state.counters["runtime_s"] = row.runtime_s;
  state.counters["repl_GB"] = row.wire_gb;
  state.counters["saved_pct"] = row.saved_pct;
  state.SetLabel(knob == 0 ? "Assise" : "LineFS-" + std::to_string(knob) + "%");
}

void PrintTable() {
  std::printf("\n=== Figure 9: Tencent Sort with compression ===\n");
  std::printf("%-12s %11s %14s %14s\n", "system", "runtime(s)", "repl bytes(GB)",
              "net saved vs raw");
  for (auto& [knob, row] : g_rows) {
    std::printf("%-12s %11.2f %14.3f %13.0f%%\n",
                knob < 0 ? "Assise" : ("LineFS-" + std::to_string(knob) + "%").c_str(),
                row.runtime_s, row.wire_gb, row.saved_pct);
  }
  std::printf("\nPrimary egress bandwidth timeline (GB/s per 500ms bucket, sort traffic + iperf):\n");
  std::printf("%-10s", "t(s)");
  size_t max_buckets = 0;
  for (auto& [knob, row] : g_rows) {
    max_buckets = std::max(max_buckets, row.bw_series.size());
  }
  max_buckets = std::min<size_t>(max_buckets, 24);
  for (size_t i = 0; i < max_buckets; ++i) {
    std::printf(" %5.1f", static_cast<double>(i) * 0.5);
  }
  std::printf("\n");
  for (auto& [knob, row] : g_rows) {
    std::printf("%-10s", knob < 0 ? "Assise" : ("LFS-" + std::to_string(knob)).c_str());
    for (size_t i = 0; i < max_buckets; ++i) {
      std::printf(" %5.2f", i < row.bw_series.size() ? row.bw_series[i] : 0.0);
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace linefs::bench

BENCHMARK(linefs::bench::BM_Fig9)
    ->Arg(0)
    ->Arg(40)
    ->Arg(60)
    ->Arg(80)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  linefs::bench::PrintTable();
  return linefs::bench::WriteBenchReport("fig9_compression");
}
