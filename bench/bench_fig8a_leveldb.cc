// Figure 8a: LevelDB (MiniKv) db_bench average latency per op, with busy
// replicas: fillseq, fillrandom, fillsync, readseq, readrandom, readhot.
// 16B keys, 1KB values.
//
// Paper shape (log scale): LineFS ~80% better sequential-insert latency and
// ~27% better random-insert; synchronous insert ~27% better; reads equal.

#include <benchmark/benchmark.h>

#include <map>

#include "bench/harness.h"
#include "src/workloads/minikv.h"

namespace linefs::bench {
namespace {

constexpr uint64_t kFillOps = 100000;  // 1KB values => ~100MB per fill.
constexpr uint64_t kReadOps = 30000;
constexpr uint64_t kValueSize = 1024;

const char* kWorkloads[] = {"fillseq", "fillrandom", "fillsync",
                            "readseq", "readrandom", "readhot"};

std::map<std::pair<int, int>, double> g_lat;  // (mode, workload) -> us/op

double RunOne(core::DfsMode mode, int workload) {
  core::DfsConfig config = BenchConfig(mode);
  config.host_fs_priority = sim::Priority::kHigh;
  Experiment exp(config);
  exp.StartStreamcluster({1, 2}, CoRunnerOptions());  // Busy replicas (§5.3).
  core::LibFs* fs = exp.cluster().CreateClient(0);
  double latency_us = 0;
  std::vector<sim::Task<>> tasks;
  tasks.push_back([](core::LibFs* fs, int workload, double* out) -> sim::Task<> {
    workloads::MiniKv::Options options;
    options.sync_writes = workload == 2;  // fillsync
    workloads::MiniKv kv(fs, options);
    Status st = co_await kv.Open();
    (void)st;
    workloads::DbBenchResult result;
    if (workload <= 2) {
      result = co_await workloads::DbBenchFill(&kv, fs->engine(), kFillOps, kValueSize,
                                               /*random=*/workload != 0, 11);
    } else {
      // Reads operate on a database filled sequentially first (setup).
      workloads::DbBenchResult fill = co_await workloads::DbBenchFill(
          &kv, fs->engine(), kFillOps, kValueSize, /*random=*/false, 11);
      (void)fill;
      Status flush = co_await kv.FlushMemtable();
      (void)flush;
      workloads::ReadPattern pattern =
          workload == 3 ? workloads::ReadPattern::kSequential
                        : (workload == 4 ? workloads::ReadPattern::kRandom
                                         : workloads::ReadPattern::kHot);
      result = co_await workloads::DbBenchRead(&kv, fs->engine(), kReadOps, kFillOps, pattern,
                                               13);
    }
    st = co_await kv.Close();
    (void)st;
    *out = result.AvgLatencyMicros();
  }(fs, workload, &latency_us));
  exp.RunAll(std::move(tasks));
  exp.SetLabel(std::string(core::DfsModeName(mode)) + "/" + kWorkloads[workload]);
  exp.AddScalar("avg_latency_us_per_op", latency_us);
  return latency_us;
}

void BM_Fig8a(benchmark::State& state) {
  core::DfsMode mode = state.range(0) == 0 ? core::DfsMode::kAssise : core::DfsMode::kLineFS;
  int workload = static_cast<int>(state.range(1));
  double lat = 0;
  for (auto _ : state) {
    lat = RunOne(mode, workload);
  }
  g_lat[{static_cast<int>(state.range(0)), workload}] = lat;
  state.counters["us_per_op"] = lat;
  state.SetLabel(std::string(core::DfsModeName(mode)) + "/" + kWorkloads[workload]);
}

void PrintTable() {
  std::printf("\n=== Figure 8a: LevelDB (MiniKv) db_bench average latency (us/op), "
              "busy replicas ===\n");
  std::printf("%-12s %10s %10s %10s\n", "workload", "Assise", "LineFS", "LineFS gain");
  for (int w = 0; w < 6; ++w) {
    double assise = g_lat[{0, w}];
    double linefs = g_lat[{1, w}];
    std::printf("%-12s %10.1f %10.1f %9.0f%%\n", kWorkloads[w], assise, linefs,
                assise > 0 ? (assise - linefs) / assise * 100 : 0);
  }
}

}  // namespace
}  // namespace linefs::bench

BENCHMARK(linefs::bench::BM_Fig8a)
    ->ArgsProduct({{0, 1}, {0, 1, 2, 3, 4, 5}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  linefs::bench::PrintTable();
  return linefs::bench::WriteBenchReport("fig8a_leveldb");
}
