// Torture sweep: Varmail under seeded randomized fault schedules.
//
// Runs the workload under N seeded fault::RandomPlan schedules (default seeds
// 1..8 — any 5 consecutive seeds cover every fault class), reporting per-seed
// throughput, retransmit work, and fault/drop counters. Two environment knobs:
//
//   LINEFS_TORTURE_SEEDS=<n>     sweep seeds 1..n instead of 1..8
//   LINEFS_FAULT_PLAN=<spec>     replay exactly this plan (single run, no sweep)
//   LINEFS_REPL_PROTOCOL=<name>  run the sweep on this replication protocol
//                                (default chain; non-default runs get a
//                                "/proto_<name>" label suffix and are
//                                informational in bench_compare)
//
// The second is the replay path: any schedule printed by a failing run (or a
// torture test) can be re-executed verbatim from its one-line spec.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/core/nicfs.h"
#include "src/fault/injector.h"
#include "src/fault/plan.h"
#include "src/fault/schedule.h"
#include "src/obs/critical_path.h"
#include "src/workloads/filebench.h"

namespace linefs::bench {
namespace {

constexpr sim::Time kRunFor = 8 * sim::kSecond;

struct TortureRow {
  std::string label;
  std::string spec;
  double kops = 0;
  uint64_t messages_dropped = 0;
  uint64_t retransmits = 0;
  uint64_t fault_edges = 0;
  // Per fault window: the canonical stage that dominated the critical path
  // while the window was open ("<fault>:<stage>", in plan order).
  std::vector<std::string> window_dominant;
};

// Intersects every operation's attributed critical-path segments with each
// fault window and reports, per window, how the pipeline spent its time while
// the fault was open — the "which stage did this fault hurt" view.
obs::JsonValue AttributeFaultWindows(const obs::CriticalPathAnalyzer& analyzer,
                                     const std::vector<fault::FaultEvent>& windows,
                                     TortureRow* row) {
  std::vector<obs::OpBreakdown> ops = analyzer.Operations();
  obs::JsonValue out = obs::JsonValue::Array();
  for (const fault::FaultEvent& w : windows) {
    std::map<std::string, sim::Time> in_window;
    for (const obs::OpBreakdown& op : ops) {
      for (const obs::CriticalSegment& seg : op.segments) {
        sim::Time begin = std::max(seg.begin, w.at);
        sim::Time end = std::min(seg.end, w.until);
        if (end > begin) {
          in_window[seg.stage] += end - begin;
        }
      }
    }
    std::string dominant = "-";
    sim::Time dominant_ns = 0;
    obs::JsonValue stages = obs::JsonValue::Object();
    for (const auto& [stage, ns] : in_window) {
      stages.Set(stage, sim::ToMicros(ns));
      if (ns > dominant_ns) {
        dominant = stage;
        dominant_ns = ns;
      }
    }
    obs::JsonValue wj = obs::JsonValue::Object();
    wj.Set("fault", fault::FaultTypeName(w.type));
    wj.Set("node", w.node);
    wj.Set("at_us", sim::ToMicros(w.at));
    wj.Set("until_us", sim::ToMicros(w.until));
    wj.Set("dominant_stage", dominant);
    wj.Set("stages_us", std::move(stages));
    out.Append(std::move(wj));
    row->window_dominant.push_back(std::string(fault::FaultTypeName(w.type)) + ":" + dominant);
  }
  return out;
}

std::vector<TortureRow> g_rows;

std::string ReplProtocol() {
  const char* env = std::getenv("LINEFS_REPL_PROTOCOL");
  return env != nullptr && *env != '\0' ? env : "chain";
}

void RunOne(std::string label, fault::FaultPlan plan) {
  core::DfsConfig config = BenchConfig(core::DfsMode::kLineFS);
  config.repl.protocol = ReplProtocol();
  if (config.repl.protocol != "chain") {
    label += "/proto_" + config.repl.protocol;
  }
  // Fast failure detection: fault windows are short.
  config.heartbeat_interval = 200 * sim::kMillisecond;
  config.heartbeat_timeout = 300 * sim::kMillisecond;
  Experiment exp(config);
  core::LibFs* fs = exp.cluster().CreateClient(0);

  TortureRow row;
  row.label = label;
  row.spec = plan.ToSpec();
  std::vector<fault::FaultEvent> windows = plan.events();

  fault::Injector injector(&exp.cluster(), std::move(plan));
  Status armed = injector.Arm();
  if (!armed.ok()) {
    std::fprintf(stderr, "bench_torture: cannot arm %s: %s\n", label.c_str(),
                 armed.message().c_str());
    std::abort();
  }

  workloads::Filebench bench(fs, workloads::Filebench::VarmailOptions(200));
  std::vector<sim::Task<>> tasks;
  tasks.push_back([](workloads::Filebench* bench) -> sim::Task<> {
    co_await bench->Preallocate();
    co_await bench->Run(kRunFor);
  }(&bench));
  exp.RunAll(std::move(tasks));
  exp.Drain(2 * sim::kSecond);  // Let the last heals land and sweepers settle.

  row.kops = bench.ops_per_second() / 1000.0;
  row.messages_dropped = injector.messages_dropped();
  row.fault_edges = injector.edges_applied();
  for (int n = 0; n < exp.cluster().num_nodes(); ++n) {
    if (exp.cluster().nicfs(n) != nullptr) {
      row.retransmits += exp.cluster().nicfs(n)->stats().repl_retransmits;
    }
  }

  exp.SetLabel("torture/" + label);
  exp.AddScalar("throughput_kops_per_sec", row.kops);
  exp.AddScalar("messages_dropped", static_cast<double>(row.messages_dropped));
  exp.AddScalar("repl_retransmits", static_cast<double>(row.retransmits));
  exp.AddScalar("fault_edges_applied", static_cast<double>(row.fault_edges));

  obs::CriticalPathAnalyzer analyzer(&exp.cluster().trace());
  obs::JsonValue extra = obs::JsonValue::Object();
  extra.Set("fault_windows", AttributeFaultWindows(analyzer, windows, &row));
  exp.SetExtra(std::move(extra));
  g_rows.push_back(std::move(row));
}

void RunSweep() {
  g_rows.clear();

  // Replay path: an explicit plan short-circuits the seed sweep.
  Result<fault::FaultPlan> env_plan = fault::FaultPlan::FromEnv();
  if (!env_plan.ok()) {
    std::fprintf(stderr, "bench_torture: bad LINEFS_FAULT_PLAN: %s\n",
                 env_plan.status().message().c_str());
    std::abort();
  }
  if (!env_plan->empty()) {
    RunOne("env_plan", std::move(*env_plan));
    return;
  }

  uint64_t seeds = 8;
  if (const char* env = std::getenv("LINEFS_TORTURE_SEEDS")) {
    seeds = std::strtoull(env, nullptr, 10);
  }
  for (uint64_t seed = 1; seed <= seeds; ++seed) {
    fault::ScheduleOptions sched;
    sched.num_nodes = 3;
    sched.first_fault = sim::kSecond;
    sched.last_heal = 7 * sim::kSecond;
    RunOne("seed" + std::to_string(seed), fault::RandomPlan(seed, sched));
  }
}

void BM_Torture(benchmark::State& state) {
  for (auto _ : state) {
    RunSweep();
  }
}

void PrintTable() {
  std::printf("\n=== Torture sweep: Varmail under seeded fault schedules ===\n");
  std::printf("%-10s %10s %10s %12s %8s  %s\n", "run", "kops/s", "dropped", "retransmits",
              "edges", "plan");
  for (const TortureRow& row : g_rows) {
    std::string one_line = row.spec;
    for (char& c : one_line) {
      if (c == '\n') {
        c = ';';
      }
    }
    std::printf("%-10s %10.1f %10llu %12llu %8llu  %s\n", row.label.c_str(), row.kops,
                (unsigned long long)row.messages_dropped, (unsigned long long)row.retransmits,
                (unsigned long long)row.fault_edges, one_line.c_str());
    // Which pipeline stage dominated the critical path inside each window.
    std::string dominant;
    for (const std::string& d : row.window_dominant) {
      if (!dominant.empty()) {
        dominant += ", ";
      }
      dominant += d;
    }
    std::printf("%-10s %*s stage-in-window: %s\n", "", 10, "",
                dominant.empty() ? "-" : dominant.c_str());
  }
}

}  // namespace
}  // namespace linefs::bench

BENCHMARK(linefs::bench::BM_Torture)->Iterations(1)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  linefs::bench::PrintTable();
  return linefs::bench::WriteBenchReport("torture");
}
