// Figure 6: aggressive consolidation — streamcluster on ALL nodes (including
// the primary) at the same priority as the DFS, with 2 DFS clients running the
// write microbenchmark.
//
// Paper shape: Assise slows streamcluster most (72% on the primary / 66% on
// replicas) with the lowest DFS throughput; Assise-BgRepl adds ~18%
// throughput; LineFS has the best throughput (~+46% over Assise) with minimal
// streamcluster slowdown (49% primary / 19% replica — mostly the kernel
// worker and LibFS's own client-side work).

#include <benchmark/benchmark.h>

#include <map>

#include "bench/harness.h"
#include "src/workloads/microbench.h"

namespace linefs::bench {
namespace {

constexpr uint64_t kBytesPerClient = 192ULL << 20;

const core::DfsMode kModes[] = {core::DfsMode::kAssise, core::DfsMode::kAssiseBgRepl,
                                core::DfsMode::kLineFS};

struct Row {
  double sc_primary_s = 0;
  double sc_replica_s = 0;
  double dfs_tput = 0;
};
std::map<int, Row> g_rows;
double g_solo_s = 0;

Row RunConfig(core::DfsMode mode) {
  core::DfsConfig config = BenchConfig(mode);
  config.host_fs_priority = sim::Priority::kNormal;  // Same priority (§5.2.4).
  Experiment exp(config);
  std::vector<workloads::Streamcluster*> jobs =
      exp.StartStreamcluster({0, 1, 2}, CoRunnerOptions());
  std::vector<core::LibFs*> fss;
  for (int c = 0; c < 2; ++c) {
    fss.push_back(exp.cluster().CreateClient(0));
  }
  sim::Time start = exp.engine().Now();
  std::vector<sim::Task<>> tasks;
  for (int c = 0; c < 2; ++c) {
    tasks.push_back([](core::LibFs* fs, int c) -> sim::Task<> {
      workloads::BenchResult r = co_await workloads::SeqWrite(
          fs, "/f6_" + std::to_string(c), kBytesPerClient, 16 << 10);
      (void)r;
    }(fss[c], c));
  }
  exp.RunAll(std::move(tasks));
  sim::Time dfs_elapsed = exp.engine().Now() - start;
  // Let streamcluster finish to get its full execution time.
  exp.Drain(60 * sim::kSecond);
  Row row;
  row.dfs_tput = 2.0 * kBytesPerClient / sim::ToSeconds(dfs_elapsed);
  row.sc_primary_s = sim::ToSeconds(jobs[0]->elapsed());
  row.sc_replica_s = sim::ToSeconds(jobs[1]->elapsed());
  exp.SetLabel(std::string(core::DfsModeName(mode)) + "/consolidated");
  exp.AddScalar("throughput_bytes_per_sec", row.dfs_tput);
  exp.AddScalar("sc_primary_s", row.sc_primary_s);
  exp.AddScalar("sc_replica_s", row.sc_replica_s);
  return row;
}

void BM_Fig6(benchmark::State& state) {
  Row row;
  for (auto _ : state) {
    row = RunConfig(kModes[state.range(0)]);
  }
  g_rows[static_cast<int>(state.range(0))] = row;
  state.counters["sc_primary_s"] = row.sc_primary_s;
  state.counters["sc_replica_s"] = row.sc_replica_s;
  state.counters["dfs_MBps"] = row.dfs_tput / 1e6;
  state.SetLabel(core::DfsModeName(kModes[state.range(0)]));
}

void BM_Fig6_Solo(benchmark::State& state) {
  for (auto _ : state) {
    Experiment exp(BenchConfig(core::DfsMode::kLineFS));
    std::vector<workloads::Streamcluster*> jobs =
        exp.StartStreamcluster({0}, CoRunnerOptions());
    exp.Drain(60 * sim::kSecond);
    g_solo_s = sim::ToSeconds(jobs[0]->elapsed());
    exp.SetLabel("streamcluster/solo");
    exp.AddScalar("solo_s", g_solo_s);
  }
  state.counters["solo_s"] = g_solo_s;
}

void PrintTable() {
  std::printf("\n=== Figure 6: streamcluster execution time + DFS throughput ===\n");
  std::printf("%-16s %14s %14s %12s\n", "system", "sc primary(s)", "sc replica(s)",
              "DFS MB/s");
  std::printf("%-16s %14.1f %14s %12s\n", "solo run", g_solo_s, "-", "-");
  for (int m = 0; m < 3; ++m) {
    const Row& row = g_rows[m];
    std::printf("%-16s %14.1f %14.1f %12.0f\n", core::DfsModeName(kModes[m]),
                row.sc_primary_s, row.sc_replica_s, row.dfs_tput / 1e6);
  }
}

}  // namespace
}  // namespace linefs::bench

BENCHMARK(linefs::bench::BM_Fig6_Solo)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(linefs::bench::BM_Fig6)->DenseRange(0, 2)->Iterations(1)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  linefs::bench::PrintTable();
  return linefs::bench::WriteBenchReport("fig6_interference");
}
