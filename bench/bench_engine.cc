// Event-engine microbenchmark (ISSUE 10): raw DES scheduler throughput,
// isolated from any file-system model. Three churn shapes stress the two
// tiers of the scheduler separately and together:
//
//   ring_churn  - same-instant Yield() storms: every resumption lands in the
//                 FIFO ready-ring, never touching the heap.
//   timer_churn - pseudo-random future sleeps: every event goes through the
//                 4-ary min-heap, with deep out-of-order inserts.
//   mixed_churn - the realistic blend (a few same-instant hops per timer),
//                 approximating the simulator's hot loop.
//
// Each run reports sim.events_per_wall_sec; bench_compare treats the scalar
// as informational (engine speed is tracked, not gated).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>

#include "bench/harness.h"
#include "src/sim/engine.h"
#include "src/sim/task.h"

namespace linefs::bench {
namespace {

constexpr int kTasks = 64;
constexpr uint64_t kEventsPerTask = 200000;

sim::Task<> YieldChurn(sim::Engine* engine, uint64_t events) {
  for (uint64_t i = 0; i < events; ++i) {
    co_await engine->Yield();
  }
}

sim::Task<> TimerChurn(sim::Engine* engine, uint64_t events, uint64_t seed) {
  // Deterministic LCG offsets: heap inserts arrive far out of order.
  uint64_t x = seed * 2654435761ULL + 1;
  for (uint64_t i = 0; i < events; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    co_await engine->SleepFor(static_cast<sim::Time>(1 + ((x >> 33) % 2000)));
  }
}

sim::Task<> MixedChurn(sim::Engine* engine, uint64_t events, uint64_t seed) {
  uint64_t x = seed * 2654435761ULL + 1;
  for (uint64_t i = 0; i < events; i += 4) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    co_await engine->SleepFor(static_cast<sim::Time>(1 + ((x >> 33) % 500)));
    co_await engine->Yield();
    co_await engine->Yield();
    co_await engine->Yield();
  }
}

template <typename SpawnFn>
void RunChurn(benchmark::State& state, const char* label, SpawnFn spawn) {
  double events_per_sec = 0;
  for (auto _ : state) {
    sim::Engine engine;
    auto t0 = std::chrono::steady_clock::now();
    for (int c = 0; c < kTasks; ++c) {
      spawn(&engine, c);
    }
    engine.Run();
    double wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    events_per_sec = wall > 0 ? static_cast<double>(engine.events_processed()) / wall : 0;
    obs::BenchRun run;
    run.label = label;
    run.scalars.emplace_back("sim.events_per_wall_sec", events_per_sec);
    run.scalars.emplace_back("events_processed", static_cast<double>(engine.events_processed()));
    run.virtual_time_us = sim::ToMicros(engine.Now());
    BenchReport::Get().AddRun(std::move(run));
  }
  state.counters["Mev/s"] = events_per_sec / 1e6;
  state.SetLabel(label);
}

void BM_RingChurn(benchmark::State& state) {
  RunChurn(state, "ring_churn", [](sim::Engine* engine, int c) {
    (void)c;
    engine->Spawn(YieldChurn(engine, kEventsPerTask), "churn");
  });
}

void BM_TimerChurn(benchmark::State& state) {
  RunChurn(state, "timer_churn", [](sim::Engine* engine, int c) {
    engine->Spawn(TimerChurn(engine, kEventsPerTask, static_cast<uint64_t>(c) + 1), "churn");
  });
}

void BM_MixedChurn(benchmark::State& state) {
  RunChurn(state, "mixed_churn", [](sim::Engine* engine, int c) {
    engine->Spawn(MixedChurn(engine, kEventsPerTask, static_cast<uint64_t>(c) + 1), "churn");
  });
}

}  // namespace
}  // namespace linefs::bench

BENCHMARK(linefs::bench::BM_RingChurn)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(linefs::bench::BM_TimerChurn)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(linefs::bench::BM_MixedChurn)->Iterations(1)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return linefs::bench::WriteBenchReport("engine");
}
