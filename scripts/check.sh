#!/usr/bin/env bash
# Repo verification: the tier-1 build + test cycle (ROADMAP.md), plus an
# optional ASan+UBSan pass.
#
#   scripts/check.sh          # tier-1: configure, build, ctest
#   scripts/check.sh --asan   # additionally build + test with ASan/UBSan
set -euo pipefail

cd "$(dirname "$0")/.."

run_suite() {
  local dir=$1
  shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$(nproc)"
  ctest --test-dir "$dir" --output-on-failure -j "$(nproc)"
}

echo "=== tier-1: build + ctest (build/) ==="
run_suite build

if [[ "${1:-}" == "--asan" ]]; then
  echo "=== sanitizers: ASan+UBSan build + ctest (build-asan/) ==="
  run_suite build-asan -DLINEFS_SANITIZE=ON
fi

echo "check.sh: all green"
