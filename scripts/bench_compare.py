#!/usr/bin/env python3
"""Perf-regression gate: compare BENCH_*.json reports against committed baselines.

Usage:
    scripts/bench_compare.py --baseline bench/baselines --candidate bench-out \
        [--threshold 15] [--bench fig4_throughput --bench fig5_pipeline ...] \
        [--update]

With --update the comparison still runs and prints per-scalar deltas, but
instead of gating, every candidate BENCH_*.json is copied over the baseline
directory (intentional perf changes are recorded by committing the refreshed
baselines). New candidate reports are added; exit status is 0 unless files
cannot be read or written.

For every BENCH_<name>.json in the baseline directory (optionally restricted
with --bench), the candidate directory must contain a report with the same
name, the same run labels, and the same scalar keys. Each scalar is classified
by name:

  higher-is-better:  contains "throughput", "kops", or "ops_per_sec"
  lower-is-better:   ends in "_us" or contains "latency"
  informational:     everything else (drop counts, fault edges, ...) -- never
                     gates, printed for context only.

A gated scalar that is more than --threshold percent worse than its baseline
fails the comparison; a missing candidate report, run, or scalar also fails
(silently dropping a bench is itself a regression). Exception: runs whose
label matches an entry in INFORMATIONAL_LABELS -- "stage_mix" (experimental
stage-composition sweeps), "proto_" (alternative replication-protocol runs:
quorum trades fan-out bandwidth for commit latency) and "scaleout_"
(open-loop shard sweeps: absolute rates shift with load-generator tuning) --
never gate, and such a run present on only one side is reported as a note,
not a failure (new protocols, stage plugins and sweep points can be
benchmarked before their baselines are committed). The "meta" block (git sha, wall runtime) is
provenance and is always ignored.

Schema v3 adds a per-run "timeline" section (windowed virtual-time series:
delivered/shed rate, queue depth, latency percentiles per window) plus
"p999"/"p999_us" fields on histogram summaries. The timeline is purely
informational for this gate -- only "scalars" are compared, exactly as under
v2, and a v3 candidate gates cleanly against a v2 baseline (the extra fields
are simply never looked at). Exit status: 0 clean, 1 regression or
structural mismatch, 2 usage/IO error.

Only the Python standard library is used.
"""

import argparse
import json
import os
import shutil
import sys

HIGHER_BETTER = ("throughput", "kops", "ops_per_sec")
LOWER_BETTER = ("latency",)
LOWER_BETTER_SUFFIX = "_us"


def classify(name):
    """Returns +1 (higher better), -1 (lower better), or 0 (informational)."""
    lowered = name.lower()
    if any(tag in lowered for tag in HIGHER_BETTER):
        return 1
    if lowered.endswith(LOWER_BETTER_SUFFIX) or any(tag in lowered for tag in LOWER_BETTER):
        return -1
    return 0


def load_report(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def runs_by_label(report, path):
    out = {}
    for run in report.get("runs", []):
        label = run.get("label", "")
        if label in out:
            raise SystemExit(f"error: duplicate run label {label!r} in {path}")
        out[label] = run
    return out


# Run-label substrings whose runs are tracked but never gated (experimental
# sweeps whose absolute numbers are expected to move): see module docstring.
INFORMATIONAL_LABELS = ("stage_mix", "proto_", "scaleout_")


def informational_label(label):
    """Experimental-sweep runs (stage-mix, alternative protocols, scale-out
    shard sweeps) are tracked but never gated."""
    return any(tag in label for tag in INFORMATIONAL_LABELS)


def compare_report(name, base, cand, threshold_pct, failures, rows):
    base_runs = runs_by_label(base, name)
    cand_runs = runs_by_label(cand, name)
    for label, base_run in base_runs.items():
        informational_run = informational_label(label)
        cand_run = cand_runs.get(label)
        if cand_run is None:
            if informational_run:
                print(f"note: {name}: informational run {label!r} absent from candidate "
                      "(not gated)")
            else:
                failures.append(f"{name}: run {label!r} missing from candidate")
            continue
        base_scalars = base_run.get("scalars", {})
        cand_scalars = cand_run.get("scalars", {})
        for key, base_val in base_scalars.items():
            direction = 0 if informational_run else classify(key)
            cand_val = cand_scalars.get(key)
            if cand_val is None:
                if informational_run:
                    continue
                failures.append(f"{name}/{label}: scalar {key!r} missing from candidate")
                continue
            delta_pct = None
            if base_val != 0:
                delta_pct = 100.0 * (cand_val - base_val) / abs(base_val)
            verdict = "info"
            if direction != 0:
                verdict = "ok"
                if base_val == 0:
                    # Can't compute a ratio; gate only on a worse sign.
                    worse = cand_val < 0 if direction > 0 else cand_val > 0
                else:
                    worse_pct = -delta_pct if direction > 0 else delta_pct
                    worse = worse_pct > threshold_pct
                if worse:
                    verdict = "FAIL"
                    failures.append(
                        f"{name}/{label}: {key} regressed "
                        f"{base_val:g} -> {cand_val:g} "
                        f"({delta_pct:+.1f}%, limit {threshold_pct:.0f}%)"
                    )
            rows.append((name, label, key, base_val, cand_val, delta_pct, verdict))
    for label in cand_runs:
        if label not in base_runs and informational_label(label):
            print(f"note: {name}: informational run {label!r} has no committed baseline "
                  "(not gated)")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, help="directory of baseline BENCH_*.json")
    parser.add_argument("--candidate", required=True, help="directory of fresh BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=15.0,
                        help="max tolerated regression, percent (default 15)")
    parser.add_argument("--bench", action="append", default=None,
                        help="gate only BENCH_<name>.json (repeatable; default: all baselines)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline dir from the candidate reports instead of "
                             "gating (prints per-scalar deltas, exits 0)")
    args = parser.parse_args()

    if not os.path.isdir(args.baseline):
        print(f"error: baseline dir {args.baseline!r} not found", file=sys.stderr)
        return 2
    names = sorted(
        f[len("BENCH_"):-len(".json")]
        for f in os.listdir(args.baseline)
        if f.startswith("BENCH_") and f.endswith(".json")
    )
    if args.bench:
        missing = [b for b in args.bench if b not in names]
        if missing:
            print(f"error: no baseline for {missing}", file=sys.stderr)
            return 2
        names = [n for n in names if n in args.bench]
    if not names:
        print("error: no BENCH_*.json baselines found", file=sys.stderr)
        return 2

    failures = []
    rows = []
    for name in names:
        base_path = os.path.join(args.baseline, f"BENCH_{name}.json")
        cand_path = os.path.join(args.candidate, f"BENCH_{name}.json")
        try:
            base = load_report(base_path)
        except (OSError, ValueError) as e:
            print(f"error: cannot read {base_path}: {e}", file=sys.stderr)
            return 2
        if not os.path.exists(cand_path):
            failures.append(f"{name}: candidate report {cand_path} missing")
            continue
        try:
            cand = load_report(cand_path)
        except (OSError, ValueError) as e:
            failures.append(f"{name}: cannot read candidate: {e}")
            continue
        compare_report(name, base, cand, args.threshold, failures, rows)

    width = max((len(f"{n}/{l}") for n, l, *_ in rows), default=20)
    print(f"{'bench/run':<{width}}  {'scalar':<28} {'baseline':>14} {'candidate':>14} "
          f"{'delta':>8}  verdict")
    for name, label, key, base_val, cand_val, delta_pct, verdict in rows:
        delta = f"{delta_pct:+.1f}%" if delta_pct is not None else "n/a"
        print(f"{name + '/' + label:<{width}}  {key:<28} {base_val:>14.3f} "
              f"{cand_val:>14.3f} {delta:>8}  {verdict}")

    if args.update:
        return update_baselines(args, rows)

    if failures:
        print(f"\nFAIL: {len(failures)} regression(s):", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print(f"\nOK: {len(rows)} scalars within {args.threshold:.0f}% of baseline")
    return 0


def update_baselines(args, rows):
    """Copies every candidate BENCH_*.json over the baseline dir (adding new
    reports) and summarizes how the gated scalars moved."""
    cand_files = sorted(
        f for f in os.listdir(args.candidate)
        if f.startswith("BENCH_") and f.endswith(".json")
    )
    if args.bench:
        cand_files = [f for f in cand_files
                      if f[len("BENCH_"):-len(".json")] in args.bench]
    if not cand_files:
        print("error: no candidate BENCH_*.json to update from", file=sys.stderr)
        return 2

    improved = regressed = 0
    print("\nbaseline update: per-scalar movement (gated scalars only)")
    for name, label, key, base_val, cand_val, delta_pct, _ in rows:
        direction = classify(key)
        if direction == 0 or delta_pct is None:
            continue
        better_pct = delta_pct if direction > 0 else -delta_pct
        tag = "improved" if better_pct > 0 else ("regressed" if better_pct < 0 else "unchanged")
        improved += better_pct > 0
        regressed += better_pct < 0
        print(f"  {name}/{label}: {key} {base_val:g} -> {cand_val:g} "
              f"({better_pct:+.1f}% {tag})")

    stale = []
    for f in os.listdir(args.baseline):
        if f.startswith("BENCH_") and f.endswith(".json") and f not in cand_files:
            stale.append(f)
    for f in stale:
        print(f"  warning: baseline {f} has no fresh candidate; left untouched",
              file=sys.stderr)

    for f in cand_files:
        try:
            shutil.copyfile(os.path.join(args.candidate, f), os.path.join(args.baseline, f))
        except OSError as e:
            print(f"error: cannot update {f}: {e}", file=sys.stderr)
            return 2
        print(f"  updated {os.path.join(args.baseline, f)}")
    print(f"\nbaselines rewritten from {args.candidate}: {len(cand_files)} report(s), "
          f"{improved} scalar(s) improved, {regressed} regressed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
